// Host-side edge-coverage accumulator.
//
// Target instrumentation emits 64-bit edge IDs into a RAM ring buffer (src/kernel/coverage.h);
// the host drains that ring over the debug port and folds the IDs into this map.
//
// Two-tier design, false-positive free:
//   * A fixed 64 Ki-bit bitmap (AFL-style) indexed by a mixed hash of the ID. A clear
//     bit proves the ID was never seen, so the overwhelmingly common "old edge" /
//     "definitely new edge" cases are one cache-line touch, no probing.
//   * An open-addressed flat table of the exact 64-bit IDs resolves the rare bitmap
//     collisions, so — unlike AFL's lossy bitmap — membership answers and Count() are
//     exact. Count() is what the paper's tables report ("average number of branches
//     found"), so false positives there would silently deflate the reported coverage.
// The bitmap is the fast path, the table is the truth; both agree by construction.

#ifndef SRC_COMMON_COVERAGE_MAP_H_
#define SRC_COMMON_COVERAGE_MAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/coverage_types.h"

namespace eof {

class CoverageMap {
 public:
  CoverageMap()
      : bitmap_(kBitmapBits / 64, 0), slots_(kInitialSlots, kEmptySlot) {}

  // Records one edge. Returns true when the edge was not seen before.
  bool Add(uint64_t edge_id) {
    uint64_t& word = bitmap_[BitIndex(edge_id) / 64];
    uint64_t mask = 1ULL << (BitIndex(edge_id) % 64);
    if ((word & mask) == 0) {
      // Clear bit: definitely unseen. Set it and record the ID without probing first.
      word |= mask;
      InsertId(edge_id);
      ++count_;
      return true;
    }
    // Bit already set: either a duplicate or a bitmap collision — the exact table decides.
    if (TableContains(edge_id)) {
      return false;
    }
    InsertId(edge_id);
    ++count_;
    return true;
  }

  // Folds a batch in; returns how many were new.
  size_t AddBatch(const std::vector<uint64_t>& edge_ids) {
    size_t fresh = 0;
    for (uint64_t id : edge_ids) {
      if (Add(id)) {
        ++fresh;
      }
    }
    return fresh;
  }

  // Folds a batch in and appends each first-seen ID to `fresh_out` in encounter
  // order; returns how many were new. Board-farm workers use this as a local
  // pre-filter: only locally-fresh IDs travel to the shared map, shrinking the
  // batch merged under the campaign lock without changing the global fresh count
  // (everything a worker drained before was already merged globally).
  size_t AddBatchFiltered(const std::vector<uint64_t>& edge_ids,
                          std::vector<uint64_t>* fresh_out) {
    size_t fresh = 0;
    for (uint64_t id : edge_ids) {
      if (Add(id)) {
        ++fresh;
        fresh_out->push_back(id);
      }
    }
    return fresh;
  }

  // Folds an attributed batch in; returns how many edges were new. Each first-seen
  // edge's hit — carrying the call index of its FIRST sighting in this batch — is
  // appended to `fresh_out` (when non-null) in encounter order, which is what the
  // scheduler's per-call attribution and the trimmer consume. Farm workers also use
  // this as the local pre-filter (the attributed analogue of AddBatchFiltered).
  size_t AddBatchAttributed(const std::vector<CovHit>& hits,
                            std::vector<CovHit>* fresh_out) {
    size_t fresh = 0;
    for (const CovHit& hit : hits) {
      if (Add(hit.edge)) {
        ++fresh;
        if (fresh_out != nullptr) {
          fresh_out->push_back(hit);
        }
      }
    }
    return fresh;
  }

  bool Contains(uint64_t edge_id) const {
    if ((bitmap_[BitIndex(edge_id) / 64] & (1ULL << (BitIndex(edge_id) % 64))) == 0) {
      return false;  // bitmap miss: provably unseen
    }
    return TableContains(edge_id);
  }

  // Number of distinct edges observed ("branches found" in Tables 3 and 4). Exact.
  size_t Count() const { return count_; }

  // Merges `other` into this map; returns the number of edges that were new here.
  size_t Merge(const CoverageMap& other) {
    size_t fresh = 0;
    if (other.has_zero_ && Add(0)) {
      ++fresh;
    }
    for (uint64_t id : other.slots_) {
      if (id != kEmptySlot && Add(id)) {
        ++fresh;
      }
    }
    return fresh;
  }

  // Invokes `fn(edge_id)` for every distinct edge (unspecified order).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (has_zero_) {
      fn(kEmptySlot);
    }
    for (uint64_t id : slots_) {
      if (id != kEmptySlot) {
        fn(id);
      }
    }
  }

  void Clear() {
    bitmap_.assign(kBitmapBits / 64, 0);
    slots_.assign(kInitialSlots, kEmptySlot);
    has_zero_ = false;
    count_ = 0;
  }

 private:
  // 64 Ki bits = 8 KiB: comfortably covers the synthetic edge space while staying
  // resident in L1/L2 for the per-execution drain fold.
  static constexpr size_t kBitmapBits = 1 << 16;
  static constexpr size_t kInitialSlots = 1 << 10;
  static constexpr uint64_t kEmptySlot = 0;  // ID 0 is tracked via has_zero_

  // Fibonacci multiplicative mix so clustered edge IDs (consecutive synthetic
  // basic-block addresses) spread over the bitmap and the probe sequence.
  static uint64_t Mix(uint64_t id) {
    uint64_t h = id * 0x9e3779b97f4a7c15ULL;
    return h ^ (h >> 29);
  }
  static size_t BitIndex(uint64_t id) { return Mix(id) & (kBitmapBits - 1); }

  bool TableContains(uint64_t id) const {
    if (id == kEmptySlot) {
      return has_zero_;
    }
    size_t mask = slots_.size() - 1;
    for (size_t probe = Mix(id) & mask;; probe = (probe + 1) & mask) {
      if (slots_[probe] == id) {
        return true;
      }
      if (slots_[probe] == kEmptySlot) {
        return false;
      }
    }
  }

  // Places a known-absent ID (callers bump count_).
  void InsertId(uint64_t id) {
    if (id == kEmptySlot) {
      has_zero_ = true;
      return;
    }
    if ((table_used_ + 1) * 10 >= slots_.size() * 7) {  // keep load factor under 0.7
      Grow();
    }
    size_t mask = slots_.size() - 1;
    size_t probe = Mix(id) & mask;
    while (slots_[probe] != kEmptySlot) {
      probe = (probe + 1) & mask;
    }
    slots_[probe] = id;
    ++table_used_;
  }

  void Grow() {
    std::vector<uint64_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, kEmptySlot);
    size_t mask = slots_.size() - 1;
    for (uint64_t id : old) {
      if (id == kEmptySlot) {
        continue;
      }
      size_t probe = Mix(id) & mask;
      while (slots_[probe] != kEmptySlot) {
        probe = (probe + 1) & mask;
      }
      slots_[probe] = id;
    }
  }

  std::vector<uint64_t> bitmap_;
  std::vector<uint64_t> slots_;
  size_t table_used_ = 0;
  bool has_zero_ = false;
  size_t count_ = 0;
};

}  // namespace eof

#endif  // SRC_COMMON_COVERAGE_MAP_H_
