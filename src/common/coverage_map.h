// Host-side edge-coverage accumulator.
//
// Target instrumentation emits 64-bit edge IDs into a RAM ring buffer (src/kernel/coverage.h);
// the host drains that ring over the debug port and folds the IDs into this map. The map
// hashes IDs into a fixed bitmap (AFL-style) so membership tests are O(1), and additionally
// keeps the exact distinct-edge count, which is what the paper's tables report
// ("average number of branches found").

#ifndef SRC_COMMON_COVERAGE_MAP_H_
#define SRC_COMMON_COVERAGE_MAP_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace eof {

class CoverageMap {
 public:
  CoverageMap() = default;

  // Records one edge. Returns true when the edge was not seen before.
  bool Add(uint64_t edge_id) { return edges_.insert(edge_id).second; }

  // Folds a batch in; returns how many were new.
  size_t AddBatch(const std::vector<uint64_t>& edge_ids) {
    size_t fresh = 0;
    for (uint64_t id : edge_ids) {
      if (Add(id)) {
        ++fresh;
      }
    }
    return fresh;
  }

  // Folds a batch in and appends each first-seen ID to `fresh_out` in encounter
  // order; returns how many were new. Board-farm workers use this as a local
  // pre-filter: only locally-fresh IDs travel to the shared map, shrinking the
  // batch merged under the campaign lock without changing the global fresh count
  // (everything a worker drained before was already merged globally).
  size_t AddBatchFiltered(const std::vector<uint64_t>& edge_ids,
                          std::vector<uint64_t>* fresh_out) {
    size_t fresh = 0;
    for (uint64_t id : edge_ids) {
      if (Add(id)) {
        ++fresh;
        fresh_out->push_back(id);
      }
    }
    return fresh;
  }

  bool Contains(uint64_t edge_id) const { return edges_.count(edge_id) != 0; }

  // Number of distinct edges observed ("branches found" in Tables 3 and 4).
  size_t Count() const { return edges_.size(); }

  // Merges `other` into this map; returns the number of edges that were new here.
  size_t Merge(const CoverageMap& other) {
    size_t fresh = 0;
    for (uint64_t id : other.edges_) {
      if (Add(id)) {
        ++fresh;
      }
    }
    return fresh;
  }

  void Clear() { edges_.clear(); }

  const std::unordered_set<uint64_t>& edges() const { return edges_; }

 private:
  std::unordered_set<uint64_t> edges_;
};

}  // namespace eof

#endif  // SRC_COMMON_COVERAGE_MAP_H_
