#include "src/common/strings.h"

#include <cctype>
#include <cstdio>

namespace eof {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(std::string_view text, char sep, bool keep_empty) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(sep, start);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    std::string_view piece = text.substr(start, end - start);
    if (keep_empty || !piece.empty()) {
      pieces.emplace_back(piece);
    }
    if (end == text.size()) {
      break;
    }
    start = end + 1;
  }
  return pieces;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() && isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

std::string StrJoin(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) {
      out.append(sep);
    }
    out.append(pieces[i]);
  }
  return out;
}

std::string BytesToHex(const uint8_t* data, size_t size) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(size * 2);
  for (size_t i = 0; i < size; ++i) {
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xf]);
  }
  return out;
}

}  // namespace eof
