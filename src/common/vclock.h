// Virtual time source shared by the board simulator and the campaign runner.
//
// The paper's campaigns run 24 wall-clock hours; here, every simulated instruction, flash
// write, and reboot advances a virtual clock, so a "24-hour campaign" is a deterministic
// virtual-time budget independent of host speed. Benchmarks scale the budget down with
// EOF_BENCH_SCALE while preserving the cost *ratios* that shape the coverage curves.

#ifndef SRC_COMMON_VCLOCK_H_
#define SRC_COMMON_VCLOCK_H_

#include <cstdint>

namespace eof {

// Microseconds of virtual time.
using VirtualDuration = uint64_t;
using VirtualTime = uint64_t;

inline constexpr VirtualDuration kVirtualMillisecond = 1000;
inline constexpr VirtualDuration kVirtualSecond = 1000 * kVirtualMillisecond;
inline constexpr VirtualDuration kVirtualMinute = 60 * kVirtualSecond;
inline constexpr VirtualDuration kVirtualHour = 60 * kVirtualMinute;

class VirtualClock {
 public:
  VirtualTime Now() const { return now_; }
  void Advance(VirtualDuration delta) { now_ += delta; }
  void Reset() { now_ = 0; }

  // Rolls the clock back to `to` (no-op when `to` is not in the past). The board's
  // warm-restore path replaces the boot sequence's cycle-accurate charges with one
  // flat restore cost; no external observer samples the clock mid-boot, so the
  // rollback is invisible as long as the caller nets out ahead of its start point.
  void RewindTo(VirtualTime to) {
    if (to < now_) {
      now_ = to;
    }
  }

 private:
  VirtualTime now_ = 0;
};

}  // namespace eof

#endif  // SRC_COMMON_VCLOCK_H_
