// Host-side logging for the EOF fuzzer engine. This is *not* the target's UART log (which
// lives in src/hw/uart.h); it is the operator-facing diagnostic stream, roughly equivalent
// to the Golang engine's log output in the paper's implementation.

#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace eof {

enum class LogSeverity : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Global severity floor; messages below it are discarded. Benchmarks raise this to kError
// to keep harness output to the paper's tables only.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

// Emits one formatted line to stderr. kFatal aborts after emitting.
void LogMessage(LogSeverity severity, const char* file, int line, const std::string& message);

// Stream-style sink: LOG(kInfo) << "flashed " << n << " partitions";
class LogStream {
 public:
  LogStream(LogSeverity severity, const char* file, int line)
      : severity_(severity), file_(file), line_(line) {}
  ~LogStream() { LogMessage(severity_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

#define EOF_LOG(severity)                                                      \
  if (::eof::LogSeverity::severity < ::eof::MinLogSeverity()) {                \
  } else                                                                       \
    ::eof::LogStream(::eof::LogSeverity::severity, __FILE__, __LINE__)

// Invariant check inside EOF itself (never used to model target bugs — targets use their
// kernel's own panic/assert plumbing so that monitors observe them).
#define EOF_CHECK(cond)                                                        \
  if (cond) {                                                                  \
  } else                                                                       \
    ::eof::LogStream(::eof::LogSeverity::kFatal, __FILE__, __LINE__)           \
        << "CHECK failed: " #cond " "

}  // namespace eof

#endif  // SRC_COMMON_LOGGING_H_
