#include "src/common/coverage_serial.h"

#include <algorithm>

#include "src/common/strings.h"

namespace eof {
namespace {

// "EFCV" little-endian.
constexpr uint8_t kMagic[4] = {'E', 'F', 'C', 'V'};
constexpr uint8_t kVersion = 1;
constexpr size_t kHeaderBytes = 4 + 1 + 1 + 2 + 8;  // magic, version, kind, pad, count

void PutVarint(std::vector<uint8_t>* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

bool GetVarint(const std::vector<uint8_t>& blob, size_t* pos, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  while (*pos < blob.size() && shift < 64) {
    uint8_t byte = blob[(*pos)++];
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;  // truncated or over-long
}

std::vector<uint8_t> SerializeSorted(const std::vector<uint64_t>& ids,
                                     CoverageWireKind kind) {
  std::vector<uint8_t> out;
  out.reserve(kHeaderBytes + ids.size() * 2);
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(kVersion);
  out.push_back(static_cast<uint8_t>(kind));
  out.push_back(0);
  out.push_back(0);
  uint64_t count = ids.size();
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(count >> (8 * i)));
  }
  uint64_t previous = 0;
  bool first = true;
  for (uint64_t id : ids) {
    // First ID raw, the rest as gaps from the previous one (strictly increasing,
    // so every gap is >= 1 and the stream self-checks monotonicity on decode).
    PutVarint(&out, first ? id : id - previous);
    previous = id;
    first = false;
  }
  return out;
}

}  // namespace

std::vector<uint8_t> SerializeCoverage(const CoverageMap& map) {
  std::vector<uint64_t> ids;
  ids.reserve(map.Count());
  map.ForEach([&ids](uint64_t id) { ids.push_back(id); });
  std::sort(ids.begin(), ids.end());
  return SerializeSorted(ids, CoverageWireKind::kFull);
}

std::vector<uint8_t> SerializeCoverageIds(std::vector<uint64_t> ids,
                                          CoverageWireKind kind) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return SerializeSorted(ids, kind);
}

Result<DecodedCoverage> DecodeCoverage(const std::vector<uint8_t>& blob) {
  if (blob.size() < kHeaderBytes) {
    return DataLossError(StrFormat("coverage blob truncated: %zu bytes, header needs %zu",
                                   blob.size(), kHeaderBytes));
  }
  if (!std::equal(kMagic, kMagic + 4, blob.begin())) {
    return DataLossError("coverage blob has bad magic");
  }
  if (blob[4] != kVersion) {
    return InvalidArgumentError(StrFormat("coverage blob version %u, expected %u",
                                          blob[4], kVersion));
  }
  if (blob[5] > static_cast<uint8_t>(CoverageWireKind::kDiff)) {
    return DataLossError(StrFormat("coverage blob has unknown kind %u", blob[5]));
  }
  DecodedCoverage decoded;
  decoded.kind = static_cast<CoverageWireKind>(blob[5]);
  uint64_t count = 0;
  for (int i = 0; i < 8; ++i) {
    count |= static_cast<uint64_t>(blob[8 + i]) << (8 * i);
  }
  if (count > blob.size() - kHeaderBytes) {
    // Each ID costs at least one payload byte, so a count beyond the payload
    // size proves truncation without decoding anything.
    return DataLossError(
        StrFormat("coverage blob claims %llu edges but has %zu payload bytes",
                  static_cast<unsigned long long>(count), blob.size() - kHeaderBytes));
  }
  decoded.ids.reserve(count);
  size_t pos = kHeaderBytes;
  uint64_t previous = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta = 0;
    if (!GetVarint(blob, &pos, &delta)) {
      return DataLossError(StrFormat("coverage blob truncated at edge %llu of %llu",
                                     static_cast<unsigned long long>(i),
                                     static_cast<unsigned long long>(count)));
    }
    if (i > 0 && (delta == 0 || delta > UINT64_MAX - previous)) {
      return DataLossError(StrFormat("coverage blob not strictly increasing at edge %llu",
                                     static_cast<unsigned long long>(i)));
    }
    previous = (i == 0) ? delta : previous + delta;
    decoded.ids.push_back(previous);
  }
  if (pos != blob.size()) {
    return DataLossError(StrFormat("coverage blob has %zu trailing bytes", blob.size() - pos));
  }
  return decoded;
}

Result<size_t> MergeSerializedCoverage(const std::vector<uint8_t>& blob,
                                       CoverageMap* into) {
  ASSIGN_OR_RETURN(DecodedCoverage decoded, DecodeCoverage(blob));
  size_t fresh = 0;
  for (uint64_t id : decoded.ids) {
    if (into->Add(id)) {
      ++fresh;
    }
  }
  return fresh;
}

}  // namespace eof
