#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace eof {
namespace {

std::atomic<int> g_min_severity{static_cast<int>(LogSeverity::kInfo)};

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(static_cast<int>(severity), std::memory_order_relaxed);
}

LogSeverity MinLogSeverity() {
  return static_cast<LogSeverity>(g_min_severity.load(std::memory_order_relaxed));
}

void LogMessage(LogSeverity severity, const char* file, int line, const std::string& message) {
  if (severity < MinLogSeverity() && severity != LogSeverity::kFatal) {
    return;
  }
  fprintf(stderr, "[%s %s:%d] %s\n", SeverityTag(severity), Basename(file), line,
          message.c_str());
  if (severity == LogSeverity::kFatal) {
    abort();
  }
}

}  // namespace eof
