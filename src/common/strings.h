// Small string helpers shared across EOF. gcc 12 lacks <format>, so StrFormat wraps
// vsnprintf with the usual two-pass sizing.

#ifndef SRC_COMMON_STRINGS_H_
#define SRC_COMMON_STRINGS_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace eof {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Splits on `sep`, dropping empty pieces when `keep_empty` is false.
std::vector<std::string> StrSplit(std::string_view text, char sep, bool keep_empty = false);

// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Case-sensitive substring test (readability wrapper over find()).
bool Contains(std::string_view text, std::string_view needle);

// Joins `pieces` with `sep` between elements.
std::string StrJoin(const std::vector<std::string>& pieces, std::string_view sep);

// Renders bytes as lowercase hex, e.g. {0xde, 0xad} -> "dead".
std::string BytesToHex(const uint8_t* data, size_t size);

}  // namespace eof

#endif  // SRC_COMMON_STRINGS_H_
