#include "src/common/rng.h"

#include <array>

namespace eof {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  // xoshiro256**
  uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Below(uint64_t bound) {
  if (bound == 0) {
    return 0;
  }
  // Lemire-style rejection to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

uint64_t Rng::Range(uint64_t lo, uint64_t hi) {
  uint64_t span = hi - lo;
  if (span == UINT64_MAX) {
    return Next();
  }
  return lo + Below(span + 1);
}

bool Rng::Chance(uint32_t num, uint32_t den) { return Below(den) < num; }

size_t Rng::WeightedIndex(const std::vector<uint64_t>& weights) {
  uint64_t total = 0;
  for (uint64_t w : weights) {
    total += w;
  }
  if (total == 0) {
    return Index(weights.size());
  }
  uint64_t pick = Below(total);
  for (size_t i = 0; i < weights.size(); ++i) {
    if (pick < weights[i]) {
      return i;
    }
    pick -= weights[i];
  }
  return weights.size() - 1;
}

uint64_t Rng::BiasedSize(uint64_t max) {
  if (max == 0) {
    return 0;
  }
  // Halve the ceiling with probability 1/2 each round: most results are small.
  uint64_t ceiling = max;
  while (ceiling > 1 && CoinFlip()) {
    ceiling /= 2;
  }
  return Below(ceiling + 1);
}

uint64_t Rng::InterestingInt(unsigned bits) {
  static const std::array<uint64_t, 14> kValues = {
      0ULL,      1ULL,          7ULL,          16ULL,         32ULL,
      64ULL,     100ULL,        127ULL,        128ULL,        255ULL,
      4096ULL,   0x7fffffffULL, 0x80000000ULL, 0xffffffffULL,
  };
  uint64_t v = kValues[Index(kValues.size())];
  if (CoinFlip()) {
    v = ~v;  // also exercise sign-extension style extremes
  }
  if (bits >= 64) {
    return v;
  }
  return v & ((1ULL << bits) - 1);
}

}  // namespace eof
