// Deterministic pseudo-random source for the fuzzing engine.
//
// Reproducibility matters for a fuzzer reproduction: every campaign in bench/ is seeded,
// and the paper's "5 repetitions" become 5 seeds. xoshiro256** gives high-quality 64-bit
// output; SplitMix64 expands the single user seed into the 4-word state.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace eof {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform value in [0, bound). bound == 0 returns 0.
  uint64_t Below(uint64_t bound);

  // Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi);

  // True with probability num/den. Requires den > 0.
  bool Chance(uint32_t num, uint32_t den);

  // True with probability 1/2.
  bool CoinFlip() { return (Next() & 1) != 0; }

  // Uniform index into a container of the given size. Requires size > 0.
  size_t Index(size_t size) { return static_cast<size_t>(Below(size)); }

  // Weighted choice: returns an index i with probability weights[i]/sum(weights).
  // All-zero weights fall back to uniform. Requires weights non-empty.
  size_t WeightedIndex(const std::vector<uint64_t>& weights);

  // A "mostly small, occasionally huge" magnitude, useful for fuzzing lengths/counts:
  // geometric-ish distribution capped at max.
  uint64_t BiasedSize(uint64_t max);

  // One of the classic interesting integer boundary values fit into `bits` (8/16/32/64).
  uint64_t InterestingInt(unsigned bits);

 private:
  uint64_t state_[4];
};

}  // namespace eof

#endif  // SRC_COMMON_RNG_H_
