// Lightweight error-propagation primitives used across the EOF codebase.
//
// The debug-port stack and the fuzzing engine run in environments where an exception thrown
// mid-transaction can leave the target in an undefined state, so all fallible operations
// return `Status` (or `Result<T>` when they also produce a value) and the caller decides how
// to react — typically by feeding the failure into the liveness watchdogs.

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace eof {

// Coarse failure classification. The watchdogs in src/core/liveness.h key off these codes:
// kTimeout and kUnavailable mark the debug link as dead, kFault marks the target as crashed.
enum class ErrorCode : uint8_t {
  kOk = 0,
  kInvalidArgument,  // caller error: bad parameter, malformed input
  kNotFound,         // missing symbol, partition, API, ...
  kAlreadyExists,    // duplicate registration
  kOutOfRange,       // address or index outside the valid window
  kResourceExhausted,  // RAM/flash/handle budget exceeded
  kFailedPrecondition,  // operation not legal in the current state
  kUnavailable,      // debug link down / target not attached
  kTimeout,          // debug link transaction timed out
  kFault,            // target raised a hardware fault / kernel panic
  kDataLoss,         // corrupted image or wire data
  kInternal,         // invariant violation inside EOF itself
};

// Human-readable name of `code`, e.g. "TIMEOUT". Never returns null.
const char* ErrorCodeName(ErrorCode code);

// Value-type status: an ErrorCode plus an optional diagnostic message.
// The empty-message kOk singleton is cheap to copy; error statuses carry their message.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "TIMEOUT: gdb continue did not ack".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

// Shorthand constructors, mirroring absl naming so call sites read naturally.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status OutOfRangeError(std::string message);
Status ResourceExhaustedError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnavailableError(std::string message);
Status TimeoutError(std::string message);
Status FaultError(std::string message);
Status DataLossError(std::string message);
Status InternalError(std::string message);

// Result<T>: either a value or an error Status. kOk statuses are not representable as the
// error arm (enforced by the constructors), so `ok()` is unambiguous.
template <typename T>
class Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : rep_(std::move(status)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  // Status of the result: OkStatus() when a value is held.
  Status status() const {
    if (ok()) {
      return OkStatus();
    }
    return std::get<Status>(rep_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

// Propagate-on-error helpers. `RETURN_IF_ERROR(expr)` returns the failing Status from the
// enclosing function; `ASSIGN_OR_RETURN(lhs, expr)` unwraps a Result<T>.
#define EOF_STATUS_CONCAT_INNER_(a, b) a##b
#define EOF_STATUS_CONCAT_(a, b) EOF_STATUS_CONCAT_INNER_(a, b)

#define RETURN_IF_ERROR(expr)                                 \
  do {                                                        \
    ::eof::Status eof_status_tmp_ = (expr);                   \
    if (!eof_status_tmp_.ok()) {                              \
      return eof_status_tmp_;                                 \
    }                                                         \
  } while (false)

#define ASSIGN_OR_RETURN(lhs, expr)                                         \
  auto EOF_STATUS_CONCAT_(eof_result_, __LINE__) = (expr);                  \
  if (!EOF_STATUS_CONCAT_(eof_result_, __LINE__).ok()) {                    \
    return EOF_STATUS_CONCAT_(eof_result_, __LINE__).status();              \
  }                                                                         \
  lhs = std::move(EOF_STATUS_CONCAT_(eof_result_, __LINE__)).value()

}  // namespace eof

#endif  // SRC_COMMON_STATUS_H_
