// The unit of attributed coverage: one coverage-ring entry as drained from the
// target. `edge` is the synthetic basic-block address the kernel reported;
// `call` is the index of the program call that was executing when the edge
// fired (the agent publishes it in the ring header before each call). Host-side
// consumers that only care about edges ignore `call`; the scheduler uses it to
// attribute fresh coverage to the owning call for trimming and directed mode.

#ifndef SRC_COMMON_COVERAGE_TYPES_H_
#define SRC_COMMON_COVERAGE_TYPES_H_

#include <cstdint>

namespace eof {

struct CovHit {
  uint64_t edge = 0;
  uint32_t call = 0;

  friend bool operator==(const CovHit& a, const CovHit& b) {
    return a.edge == b.edge && a.call == b.call;
  }
  friend bool operator!=(const CovHit& a, const CovHit& b) { return !(a == b); }
};

}  // namespace eof

#endif  // SRC_COMMON_COVERAGE_TYPES_H_
