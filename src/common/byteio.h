// Little-endian byte serialization for the agent wire format and flash images.
//
// The on-target agent deserializes programs using only primitive operations (§4.3.2), so
// the wire format here is deliberately simple: fixed-width little-endian integers and
// length-prefixed byte strings — no varints, no alignment games.

#ifndef SRC_COMMON_BYTEIO_H_
#define SRC_COMMON_BYTEIO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace eof {

// Appends values to an owned byte buffer.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutLe(v, 2); }
  void PutU32(uint32_t v) { PutLe(v, 4); }
  void PutU64(uint64_t v) { PutLe(v, 8); }

  void PutBytes(const uint8_t* data, size_t size) { buf_.insert(buf_.end(), data, data + size); }

  // Length-prefixed (u32) byte string.
  void PutLengthPrefixed(const std::vector<uint8_t>& data) {
    PutU32(static_cast<uint32_t>(data.size()));
    PutBytes(data.data(), data.size());
  }
  void PutLengthPrefixed(const std::string& data) {
    PutU32(static_cast<uint32_t>(data.size()));
    PutBytes(reinterpret_cast<const uint8_t*>(data.data()), data.size());
  }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> TakeBytes() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void PutLe(uint64_t v, int width) {
    for (int i = 0; i < width; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (i * 8)));
    }
  }

  std::vector<uint8_t> buf_;
};

// Reads values from a non-owned byte span; every read is bounds-checked because the reader
// also runs "on target" against host-supplied (i.e. fuzzer-supplied) bytes.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& data) : data_(data.data()), size_(data.size()) {}

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  bool failed() const { return failed_; }

  uint8_t GetU8() { return static_cast<uint8_t>(GetLe(1)); }
  uint16_t GetU16() { return static_cast<uint16_t>(GetLe(2)); }
  uint32_t GetU32() { return static_cast<uint32_t>(GetLe(4)); }
  uint64_t GetU64() { return GetLe(8); }

  // Reads a u32 length then that many bytes. On overrun, sets the failure flag and returns
  // an empty vector.
  std::vector<uint8_t> GetLengthPrefixed() {
    uint32_t len = GetU32();
    std::vector<uint8_t> out;
    if (failed_ || len > remaining()) {
      failed_ = true;
      return out;
    }
    out.assign(data_ + pos_, data_ + pos_ + len);
    pos_ += len;
    return out;
  }

  // Copies `size` raw bytes; zero-fills and flags failure on overrun.
  void GetBytes(uint8_t* out, size_t size) {
    if (size > remaining()) {
      failed_ = true;
      memset(out, 0, size);
      return;
    }
    memcpy(out, data_ + pos_, size);
    pos_ += size;
  }

 private:
  uint64_t GetLe(int width) {
    if (static_cast<size_t>(width) > remaining()) {
      failed_ = true;
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < width; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + i]) << (i * 8);
    }
    pos_ += static_cast<size_t>(width);
    return v;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace eof

#endif  // SRC_COMMON_BYTEIO_H_
