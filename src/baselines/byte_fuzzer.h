// Byte-buffer baseline fuzzers:
//   * GDBFuzz — on-hardware, no target instrumentation; coverage observed by rotating the
//     board's few hardware breakpoints over statically-known basic blocks; AFL-style
//     buffers into an application entry point.
//   * SHIFT — semihosting instrumentation (full coverage, expensive traps), AFL-style
//     buffers into an application entry point, on hardware.
//   * GUSTAVE — emulation (QEMU+TCG coverage), AFL-style buffer decoded into a syscall
//     sequence, timeout-only detection. Runs against PoKOS.
//
// All three share this loop; `mode` selects instrumentation, coverage source, and input
// construction.

#ifndef SRC_BASELINES_BYTE_FUZZER_H_
#define SRC_BASELINES_BYTE_FUZZER_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"
#include "src/core/deployment.h"
#include "src/core/fuzzer.h"
#include "src/core/scheduler.h"
#include "src/fuzz/byte_mutator.h"

namespace eof {

enum class ByteFuzzerMode {
  kGdbFuzz,
  kShift,
  kGustave,
};

const char* ByteFuzzerModeName(ByteFuzzerMode mode);

struct ByteFuzzerConfig {
  ByteFuzzerMode mode = ByteFuzzerMode::kGdbFuzz;
  std::string os_name = "freertos";
  std::string board_name;  // "" = OS default (GUSTAVE overrides to QEMU)

  // Application entry the buffers feed: "http" (http_handle_raw) or "json" (json_parse).
  // Ignored by GUSTAVE, which decodes buffers into PoKOS syscall sequences.
  std::string entry = "http";

  uint64_t seed = 1;
  VirtualDuration budget = 10 * kVirtualMinute;
  uint32_t sample_points = 96;
  uint64_t max_input_len = 512;
};

class ByteFuzzer {
 public:
  explicit ByteFuzzer(ByteFuzzerConfig config) : config_(std::move(config)) {}

  Result<CampaignResult> Run();

 private:
  struct SeedEntry {
    std::vector<uint8_t> bytes;
    uint64_t new_hits = 0;
  };

  Status Setup();
  Status Restore();
  // Rotates hardware breakpoints onto not-yet-hit candidate blocks (GDBFuzz only).
  Status PlantBreakpoints();
  // Recycles planted-but-silent probes back into the candidate queue.
  Status RotateBreakpoints();
  // Initial seed corpus for the entry (valid requests / documents, as the real tools ship).
  void SeedCorpus();
  std::vector<uint8_t> NextInput();
  WireProgram BuildProgram(const std::vector<uint8_t>& input);
  // Executes; returns number of newly-observed coverage units.
  Result<uint64_t> ExecuteOne(const WireProgram& program);
  void MaybeSample();

  ByteFuzzerConfig config_;
  std::unique_ptr<Deployment> deployment_;
  std::unique_ptr<Rng> rng_;
  std::unique_ptr<fuzz::ByteMutator> mutator_;

  // API ids resolved from the target registry.
  uint32_t entry_api_ = 0;
  uint32_t setup_api_ = 0;  // http_server_start when entry == "http"
  bool has_setup_ = false;
  size_t gustave_api_count_ = 0;
  std::vector<std::vector<ArgKind>> gustave_signatures_;

  // Coverage accounting.
  CoverageMap coverage_;                      // ring-based (SHIFT / GUSTAVE)
  std::unordered_set<uint64_t> bb_hit_;       // breakpoint-based (GDBFuzz)
  std::vector<uint64_t> bb_candidates_;       // unplanted, unhit candidate blocks
  std::unordered_set<uint64_t> bb_planted_;

  std::vector<SeedEntry> corpus_;
  CampaignResult result_;
  uint64_t executor_main_addr_ = 0;
  VirtualTime start_time_ = 0;
  std::optional<SeriesSampler> sampler_;  // shared series recorder (scheduler.h)

  uint64_t CoverageCount() const {
    return config_.mode == ByteFuzzerMode::kGdbFuzz ? bb_hit_.size() : coverage_.Count();
  }
};

}  // namespace eof

#endif  // SRC_BASELINES_BYTE_FUZZER_H_
