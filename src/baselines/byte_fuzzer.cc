#include "src/baselines/byte_fuzzer.h"

#include <algorithm>

#include "src/common/strings.h"
#include "src/kernel/os.h"

namespace eof {
namespace {

constexpr int kMaxContinueRounds = 5;

}  // namespace

const char* ByteFuzzerModeName(ByteFuzzerMode mode) {
  switch (mode) {
    case ByteFuzzerMode::kGdbFuzz:
      return "gdbfuzz";
    case ByteFuzzerMode::kShift:
      return "shift";
    case ByteFuzzerMode::kGustave:
      return "gustave";
  }
  return "?";
}

Status ByteFuzzer::Setup() {
  DeployOptions deploy;
  deploy.os_name = config_.os_name;
  deploy.board_name = config_.board_name;
  deploy.seed = config_.seed;
  // The published baseline tools issue one GDB/OpenOCD command per operation; EOF's
  // vectored link batching and delta reflash are not part of their designs.
  deploy.batched_link = false;
  switch (config_.mode) {
    case ByteFuzzerMode::kGdbFuzz:
      // No target instrumentation at all: coverage comes from hardware breakpoints.
      deploy.instrumentation.enabled = false;
      break;
    case ByteFuzzerMode::kShift:
      // Semihosting instrumentation, confined to the application under test.
      deploy.instrumentation.enabled = true;
      deploy.instrumentation.semihost = true;
      deploy.instrumentation.module_filter = {"apps/"};
      break;
    case ByteFuzzerMode::kGustave:
      // QEMU TCG tracing: full-image coverage without an on-target cost model change.
      deploy.instrumentation.enabled = true;
      if (deploy.board_name.empty()) {
        deploy.board_name = "qemu-virt-riscv";
      }
      break;
  }
  ASSIGN_OR_RETURN(deployment_, Deployment::Create(deploy));
  rng_ = std::make_unique<Rng>(config_.seed ^ 0xb17ef0ddULL);
  mutator_ = std::make_unique<fuzz::ByteMutator>(config_.max_input_len);

  ASSIGN_OR_RETURN(OsInfo info, OsRegistry::Instance().Find(config_.os_name));
  std::unique_ptr<Os> os = info.factory();
  if (config_.mode == ByteFuzzerMode::kGustave) {
    // GUSTAVE decodes buffers into sequences over the whole (base-tier) registry.
    gustave_api_count_ = os->registry().size();
    for (const ApiSpec& api : os->registry().all()) {
      std::vector<ArgKind> signature;
      for (const ArgSpec& arg : api.args) {
        signature.push_back(arg.kind);
      }
      gustave_signatures_.push_back(std::move(signature));
    }
  } else {
    const char* entry_name = config_.entry == "json" ? "json_parse" : "http_handle_raw";
    const ApiSpec* entry = os->registry().FindByName(entry_name);
    if (entry == nullptr) {
      return NotFoundError(StrFormat("entry '%s' not on target", entry_name));
    }
    entry_api_ = entry->id;
    if (config_.entry == "http") {
      const ApiSpec* setup = os->registry().FindByName("http_server_start");
      if (setup == nullptr) {
        return NotFoundError("http_server_start not on target");
      }
      setup_api_ = setup->id;
      has_setup_ = true;
    }
  }

  ASSIGN_OR_RETURN(executor_main_addr_, deployment_->SymbolAddress("executor_main"));
  RETURN_IF_ERROR(deployment_->port().SetBreakpoint(executor_main_addr_));

  if (config_.mode == ByteFuzzerMode::kGdbFuzz) {
    // The static-analysis step: candidate basic blocks of the modules under test.
    std::vector<std::string> modules = config_.entry == "json"
                                           ? std::vector<std::string>{"apps/json"}
                                           : std::vector<std::string>{"apps/http"};
    for (const std::string& module : modules) {
      auto layout = deployment_->image().ModuleOf(module);
      if (!layout.ok()) {
        return layout.status();
      }
      for (uint64_t i = 0; i < layout.value().bb_count; ++i) {
        bb_candidates_.push_back(layout.value().base + i * kBasicBlockStride);
      }
    }
    // Random probing order, as GDBFuzz does when CFG ordering gives no hint.
    for (size_t i = bb_candidates_.size(); i > 1; --i) {
      std::swap(bb_candidates_[i - 1], bb_candidates_[rng_->Index(i)]);
    }
    RETURN_IF_ERROR(PlantBreakpoints());
  }

  SeedCorpus();
  start_time_ = deployment_->port().Now();
  sampler_.emplace(config_.budget, config_.sample_points);
  return OkStatus();
}

Status ByteFuzzer::RotateBreakpoints() {
  // Unhit probes go back to the end of the queue; fresh candidates take their slots.
  std::vector<uint64_t> recycled(bb_planted_.begin(), bb_planted_.end());
  for (uint64_t address : recycled) {
    RETURN_IF_ERROR(deployment_->port().ClearBreakpoint(address));
  }
  bb_planted_.clear();
  bb_candidates_.insert(bb_candidates_.begin(), recycled.begin(), recycled.end());
  return PlantBreakpoints();
}

void ByteFuzzer::SeedCorpus() {
  std::vector<std::string> seeds;
  if (config_.mode == ByteFuzzerMode::kShift) {
    // SHiFT's harness feeds AFL-style raw buffers without a curated seed corpus (the
    // paper's Table 4 shows it far below GDBFuzz on JSON despite a richer coverage
    // signal — input quality, not observation, is its bottleneck).
    return;
  }
  if (config_.mode == ByteFuzzerMode::kGustave) {
    // GUSTAVE ships minimal seed tapes: a partition brought to NORMAL mode with a thread,
    // and a queuing-port round trip. Encoded against the tape format in BuildProgram.
    auto tape = [&](std::initializer_list<uint8_t> bytes) {
      corpus_.push_back(SeedEntry{std::vector<uint8_t>(bytes), 1});
    };
    // pok_partition_create("p0", 4096, 100); set_mode(ref, NORMAL); thread_create(ref,..)
    tape({0, 2, 'p', '0', 0x00, 0x10, 0, 0, 100, 0, 0, 0,      // partition_create
          1, 1, 3, 0, 0, 0,                                    // set_mode(ref 0, 3)
          2, 1, 10, 0, 0, 0, 50, 0, 0, 0});                    // thread_create(ref 0,...)
    // queuing port create + send + receive.
    tape({7, 3, 'q', 'p', '0', 32, 0, 0, 0, 4, 0, 0, 0, 1, 0, 0, 0,  // qport create
          8, 1, 4, 'm', 's', 'g', '1',                               // send(ref, "msg1")
          9, 1});                                                    // receive(ref)
    return;
  }
  if (config_.entry == "http") {
    seeds = {
        "GET / HTTP/1.1\r\nhost: device.local\r\n\r\n",
        "GET /api/status?verbose=1 HTTP/1.1\r\nhost: a\r\n\r\n",
        "POST /api/led HTTP/1.1\r\ncontent-length: 2\r\n\r\non",
        "PUT /upload HTTP/1.1\r\ncontent-length: 4\r\n\r\nDATA",
        "DELETE /files/a.txt HTTP/1.0\r\n\r\n",
    };
  } else {
    seeds = {
        "{\"k\":1}",
        "[1,-2.5e+3,\"a\\n\",true,false,null]",
        "{\"a\":{\"b\":[{},\"\\u0041\"]}}",
        "  [ ]  ",
    };
  }
  for (const std::string& seed : seeds) {
    corpus_.push_back(SeedEntry{std::vector<uint8_t>(seed.begin(), seed.end()), 1});
  }
}

Status ByteFuzzer::PlantBreakpoints() {
  int budget = deployment_->board_spec().max_hw_breakpoints;
  budget -= static_cast<int>(bb_planted_.size());
  while (budget > 0 && !bb_candidates_.empty()) {
    uint64_t address = bb_candidates_.back();
    bb_candidates_.pop_back();
    if (bb_hit_.count(address) != 0) {
      continue;
    }
    Status planted = deployment_->port().SetBreakpoint(address);
    if (!planted.ok()) {
      bb_candidates_.push_back(address);
      return planted.code() == ErrorCode::kResourceExhausted ? OkStatus() : planted;
    }
    bb_planted_.insert(address);
    --budget;
  }
  return OkStatus();
}

Status ByteFuzzer::Restore() {
  ++result_.restores;
  RETURN_IF_ERROR(deployment_->ReflashAndReboot());
  RETURN_IF_ERROR(deployment_->port().SetBreakpoint(executor_main_addr_));
  if (config_.mode == ByteFuzzerMode::kGdbFuzz) {
    for (uint64_t address : bb_planted_) {
      RETURN_IF_ERROR(deployment_->port().SetBreakpoint(address));
    }
  }
  return OkStatus();
}

std::vector<uint8_t> ByteFuzzer::NextInput() {
  if (!corpus_.empty() && rng_->Chance(3, 4)) {
    const SeedEntry& seed = corpus_[rng_->Index(corpus_.size())];
    if (corpus_.size() >= 2 && rng_->Chance(1, 8)) {
      const SeedEntry& other = corpus_[rng_->Index(corpus_.size())];
      return mutator_->Splice(seed.bytes, other.bytes, *rng_);
    }
    return mutator_->Mutate(seed.bytes, *rng_);
  }
  return mutator_->Random(*rng_);
}

WireProgram ByteFuzzer::BuildProgram(const std::vector<uint8_t>& input) {
  WireProgram program;
  if (config_.mode != ByteFuzzerMode::kGustave) {
    if (has_setup_) {
      WireCall setup;
      setup.api_id = setup_api_;
      setup.args = {WireArg::Scalar(80)};
      program.calls.push_back(std::move(setup));
    }
    WireCall entry;
    entry.api_id = entry_api_;
    entry.args = {WireArg::Bytes(input)};
    program.calls.push_back(std::move(entry));
    return program;
  }
  // GUSTAVE: interpret the buffer as a syscall tape: [api byte][arg bytes...] repeated.
  size_t pos = 0;
  auto take = [&](size_t n) -> uint64_t {
    uint64_t value = 0;
    for (size_t i = 0; i < n && pos < input.size(); ++i, ++pos) {
      value |= static_cast<uint64_t>(input[pos]) << (i * 8);
    }
    return value;
  };
  while (pos < input.size() && program.calls.size() < 8) {
    uint32_t api = static_cast<uint32_t>(take(1)) % gustave_api_count_;
    WireCall call;
    call.api_id = api;
    for (ArgKind kind : gustave_signatures_[api]) {
      switch (kind) {
        case ArgKind::kBuffer:
        case ArgKind::kString: {
          size_t len = static_cast<size_t>(take(1)) % 64;
          std::vector<uint8_t> bytes;
          for (size_t i = 0; i < len && pos < input.size(); ++i, ++pos) {
            bytes.push_back(input[pos]);
          }
          call.args.push_back(WireArg::Bytes(std::move(bytes)));
          break;
        }
        case ArgKind::kResource: {
          uint64_t raw = take(1);
          // Bind to an earlier result most of the time: GUSTAVE's interpreter resolves
          // small tape values against its object table.
          if (!program.calls.empty() && (raw & 3) != 0) {
            call.args.push_back(WireArg::ResultRef(
                static_cast<uint16_t>(raw % program.calls.size())));
          } else {
            call.args.push_back(WireArg::Scalar(raw));
          }
          break;
        }
        default:
          call.args.push_back(WireArg::Scalar(take(4)));
          break;
      }
    }
    program.calls.push_back(std::move(call));
  }
  if (program.calls.empty()) {
    WireCall call;
    call.api_id = 0;
    program.calls.push_back(std::move(call));
  }
  return program;
}

Result<uint64_t> ByteFuzzer::ExecuteOne(const WireProgram& program) {
  DebugPort& port = deployment_->port();
  std::vector<uint8_t> encoded = EncodeProgram(program);
  Status write = deployment_->WriteTestCase(encoded);
  if (!write.ok()) {
    ++result_.timeouts;
    RETURN_IF_ERROR(Restore());
    return 0;
  }
  bool completed = false;
  for (int round = 0; round < kMaxContinueRounds && !completed; ++round) {
    auto stop = port.Continue();
    if (!stop.ok()) {
      ++result_.timeouts;
      ++result_.crashes;  // timeout-style detection: unresponsive target = crash event
      RETURN_IF_ERROR(Restore());
      return 0;
    }
    switch (stop.value().reason) {
      case HaltReason::kBreakpoint:
        if (stop.value().symbol == "executor_main") {
          auto status = deployment_->ReadAgentStatus();
          if (status.ok() && status.value().state == AgentState::kWaiting) {
            continue;  // first pause before the mailbox read
          }
          completed = true;
        }
        break;
      case HaltReason::kIdle:
        completed = true;
        break;
      default: {
        // Quantum expired: a wedged or crashed target shows up as a stalled PC.
        auto pc1 = port.ReadPC();
        auto again = port.Continue();
        auto pc2 = port.ReadPC();
        if (!pc1.ok() || !again.ok() || !pc2.ok() || pc1.value() == pc2.value()) {
          ++result_.crashes;
          ++result_.stalls;
          RETURN_IF_ERROR(Restore());
          return 0;
        }
        break;
      }
    }
  }

  uint64_t fresh = 0;
  if (config_.mode == ByteFuzzerMode::kGdbFuzz) {
    for (uint64_t address : deployment_->port().TakeBreakpointHits()) {
      if (bb_hit_.insert(address).second) {
        ++fresh;
      }
      if (bb_planted_.erase(address) != 0) {
        (void)deployment_->port().ClearBreakpoint(address);
      }
    }
    RETURN_IF_ERROR(PlantBreakpoints());
  } else {
    auto entries = deployment_->DrainCoverage();
    if (entries.ok()) {
      fresh = coverage_.AddBatchAttributed(entries.value(), nullptr);
    }
  }
  (void)deployment_->port().DrainUart();
  return fresh;
}

void ByteFuzzer::MaybeSample() {
  sampler_->Advance(deployment_->port().Now() - start_time_, CoverageCount(),
                    &result_.series);
}

Result<CampaignResult> ByteFuzzer::Run() {
  RETURN_IF_ERROR(Setup());
  DebugPort& port = deployment_->port();
  uint64_t execs_since_reset = 0;
  while (port.Now() - start_time_ < config_.budget) {
    std::vector<uint8_t> input = NextInput();
    WireProgram program = BuildProgram(input);
    ASSIGN_OR_RETURN(uint64_t fresh, ExecuteOne(program));
    ++result_.execs;
    if (config_.mode == ByteFuzzerMode::kGdbFuzz && result_.execs % 8 == 0) {
      RETURN_IF_ERROR(RotateBreakpoints());
    }
    if (fresh > 0) {
      corpus_.push_back(SeedEntry{std::move(input), fresh});
      if (corpus_.size() > 2048) {
        corpus_.erase(corpus_.begin(), corpus_.begin() + 1024);
      }
    }
    if (++execs_since_reset >= 64) {
      execs_since_reset = 0;
      (void)port.ResetTarget();
      if (deployment_->board().power_state() != PowerState::kRunning) {
        RETURN_IF_ERROR(Restore());
      } else {
        RETURN_IF_ERROR(port.SetBreakpoint(executor_main_addr_));
        if (config_.mode == ByteFuzzerMode::kGdbFuzz) {
          for (uint64_t address : bb_planted_) {
            RETURN_IF_ERROR(port.SetBreakpoint(address));
          }
        }
      }
    }
    MaybeSample();
  }
  sampler_->Finish(CoverageCount(), &result_.series);
  result_.final_coverage = CoverageCount();
  result_.corpus_size = corpus_.size();
  result_.elapsed = port.Now() - start_time_;
  return result_;
}

}  // namespace eof
