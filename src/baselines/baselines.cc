#include "src/baselines/baselines.h"

namespace eof {
namespace {

// QEMU machine for an OS (Tardis runs everything emulated).
std::string QemuBoardFor(const std::string& os_name) {
  if (os_name == "pokos") {
    return "qemu-virt-riscv";
  }
  return "qemu-virt-arm";
}

}  // namespace

FuzzerConfig EofConfig(const std::string& os_name, uint64_t seed, VirtualDuration budget) {
  FuzzerConfig config;
  config.os_name = os_name;
  config.seed = seed;
  config.budget = budget;
  return config;
}

FuzzerConfig EofNfConfig(const std::string& os_name, uint64_t seed,
                         VirtualDuration budget) {
  FuzzerConfig config = EofConfig(os_name, seed, budget);
  config.coverage_feedback = false;
  return config;
}

FuzzerConfig TardisConfig(const std::string& os_name, uint64_t seed,
                          VirtualDuration budget) {
  FuzzerConfig config = EofConfig(os_name, seed, budget);
  config.board_name = QemuBoardFor(os_name);
  config.use_extended_specs = false;     // hand-written Syzkaller descriptions only
  config.gen.max_buffer_len = 48;        // conservative fixed-size buffers in those specs
  config.log_monitor = false;            // bug detection rests on the timeout mechanism
  config.exception_monitor = false;
  config.restore_mode = RestoreMode::kRebootOnly;  // emulator reset; no reflash logic
  return config;
}

}  // namespace eof
