// Baseline fuzzer configurations (§5.1). Two baselines are configurations of the EOF
// engine (their designs share the structure): EOF-nf (EOF minus coverage feedback) and
// Tardis (Syzkaller-based, QEMU shared-memory transport, hand-written base-tier specs,
// timeout-only bug/liveness detection, reboot-style reset). GDBFuzz, SHIFT and GUSTAVE
// are byte-buffer fuzzers with their own loop (src/baselines/byte_fuzzer.h).

#ifndef SRC_BASELINES_BASELINES_H_
#define SRC_BASELINES_BASELINES_H_

#include <string>

#include "src/common/vclock.h"
#include "src/core/fuzzer.h"

namespace eof {

// The real thing, on the OS's default evaluation board.
FuzzerConfig EofConfig(const std::string& os_name, uint64_t seed, VirtualDuration budget);

// EOF without feedback guidance: same specs and monitors, no corpus.
FuzzerConfig EofNfConfig(const std::string& os_name, uint64_t seed, VirtualDuration budget);

// Tardis: emulation (QEMU machine), base-tier specs with conservative buffer sizes,
// timeout-only detection (no log/exception monitors), reboot-only reset.
FuzzerConfig TardisConfig(const std::string& os_name, uint64_t seed, VirtualDuration budget);

}  // namespace eof

#endif  // SRC_BASELINES_BASELINES_H_
