#include "src/fuzz/generator.h"

#include <algorithm>

#include "src/common/logging.h"

namespace eof {
namespace fuzz {
namespace {

constexpr uint64_t kBaseWeight = 10;
constexpr uint64_t kCovCreditBoost = 40;
constexpr uint64_t kCovCreditCap = 400;
constexpr uint64_t kAdjacencyBoost = 30;
constexpr uint64_t kFocusBoost = 60;
constexpr int kMaxProducerDepth = 3;

}  // namespace

Generator::Generator(const spec::CompiledSpecs& specs, GeneratorOptions options,
                     uint64_t seed)
    : specs_(specs),
      options_(std::move(options)),
      rng_(seed),
      byte_mutator_(options_.max_buffer_len == 0 ? 2048 : options_.max_buffer_len) {
  spec_to_slot_.assign(specs_.calls.size(), SIZE_MAX);
  for (size_t i = 0; i < specs_.calls.size(); ++i) {
    const spec::CompiledCall& call = specs_.calls[i];
    if (!options_.use_extended && (call.extended || call.is_pseudo)) {
      continue;
    }
    if (!options_.allowed_subsystems.empty()) {
      bool allowed = false;
      for (const std::string& subsystem : options_.allowed_subsystems) {
        if (call.subsystem == subsystem) {
          allowed = true;
          break;
        }
      }
      if (!allowed) {
        continue;
      }
    }
    spec_to_slot_[i] = eligible_.size();
    eligible_.push_back(i);
  }
  EOF_CHECK(!eligible_.empty()) << "no eligible calls under the generator options";
  weights_.assign(eligible_.size(), kBaseWeight);
  cov_credit_.assign(eligible_.size(), 0);
  focus_boost_.assign(eligible_.size(), 0);
}

uint64_t Generator::BufferCap(const ArgSpec& arg) const {
  uint64_t cap = arg.buf_max;
  if (options_.max_buffer_len != 0) {
    cap = std::min(cap, options_.max_buffer_len);
  }
  return cap;
}

size_t Generator::ProducerSpec(const std::string& kind) {
  // Collect all producers, pick one at random (there may be several, e.g. the three
  // semaphore constructors all produce "queue").
  std::vector<size_t> producers;
  for (size_t slot = 0; slot < eligible_.size(); ++slot) {
    if (specs_.calls[eligible_[slot]].produces == kind) {
      producers.push_back(eligible_[slot]);
    }
  }
  if (producers.empty()) {
    return SIZE_MAX;
  }
  return producers[rng_.Index(producers.size())];
}

int Generator::FindProducer(const Program& program, const std::string& kind, size_t before) {
  // Scan backwards: recent producers are the live ones.
  for (size_t i = before; i-- > 0;) {
    const spec::CompiledCall& decl = specs_.calls[program.calls[i].spec_index];
    if (decl.produces == kind && rng_.Chance(3, 4)) {
      return static_cast<int>(i);
    }
  }
  // Second pass without the stochastic skip.
  for (size_t i = before; i-- > 0;) {
    if (specs_.calls[program.calls[i].spec_index].produces == kind) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

ProgArg Generator::GenArg(Program* program, const ArgSpec& arg,
                          const std::vector<ProgArg>& so_far, int depth) {
  switch (arg.kind) {
    case ArgKind::kScalar: {
      if (rng_.Below(1000) < options_.wild_scalar_per_mille) {
        return ProgArg::Scalar(rng_.InterestingInt(arg.bits));
      }
      uint64_t span = arg.max - arg.min;
      uint64_t value = arg.min + (span == UINT64_MAX ? rng_.Next() : rng_.BiasedSize(span));
      return ProgArg::Scalar(value);
    }
    case ArgKind::kFlags: {
      std::vector<uint64_t> pool = arg.flag_values;
      if (options_.use_extended) {
        pool.insert(pool.end(), arg.extended_flag_values.begin(),
                    arg.extended_flag_values.end());
      }
      if (pool.empty()) {
        return ProgArg::Scalar(0);
      }
      uint64_t value = pool[rng_.Index(pool.size())];
      if (arg.combinable && rng_.Chance(1, 3)) {
        value |= pool[rng_.Index(pool.size())];
      }
      return ProgArg::Scalar(value);
    }
    case ArgKind::kResource: {
      if (arg.optional_null && rng_.Chance(1, 12)) {
        return ProgArg::Scalar(0);
      }
      int producer = FindProducer(*program, arg.resource_kind, program->calls.size());
      if (producer >= 0) {
        return ProgArg::Result(producer);
      }
      // No producer yet: emit one first (bounded), then reference it.
      if (depth < kMaxProducerDepth) {
        size_t producer_spec = ProducerSpec(arg.resource_kind);
        if (producer_spec != SIZE_MAX && program->calls.size() < kWireMaxCalls - 1) {
          size_t index = EmitCall(program, producer_spec, depth + 1);
          return ProgArg::Result(static_cast<int>(index));
        }
      }
      // Fall back to a junk handle (how real fuzzers probe validation paths).
      return ProgArg::Scalar(rng_.Chance(1, 2) ? 0 : rng_.Below(64));
    }
    case ArgKind::kBuffer: {
      uint64_t cap = BufferCap(arg);
      uint64_t len = arg.buf_min + rng_.BiasedSize(cap > arg.buf_min ? cap - arg.buf_min : 0);
      std::vector<uint8_t> bytes(len);
      for (auto& byte : bytes) {
        byte = static_cast<uint8_t>(rng_.Next());
      }
      return ProgArg::Bytes(std::move(bytes));
    }
    case ArgKind::kString: {
      if (!arg.string_set.empty() && rng_.Chance(4, 5)) {
        const std::string& pick = arg.string_set[rng_.Index(arg.string_set.size())];
        return ProgArg::Bytes(std::vector<uint8_t>(pick.begin(), pick.end()));
      }
      // Free-form text: printable, length capped like buffers.
      uint64_t cap = std::min<uint64_t>(BufferCap(arg), 128);
      uint64_t len = rng_.BiasedSize(cap);
      std::vector<uint8_t> bytes(len);
      for (auto& byte : bytes) {
        byte = static_cast<uint8_t>('a' + rng_.Below(26));
      }
      return ProgArg::Bytes(std::move(bytes));
    }
    case ArgKind::kLen: {
      // Length of the sibling buffer, occasionally off by a little (classic length-lie).
      uint64_t actual = 0;
      if (arg.len_of >= 0 && static_cast<size_t>(arg.len_of) < so_far.size()) {
        actual = so_far[static_cast<size_t>(arg.len_of)].bytes.size();
      }
      if (rng_.Chance(1, 10)) {
        actual += rng_.Below(16);
      }
      return ProgArg::Scalar(actual);
    }
  }
  return ProgArg::Scalar(0);
}

size_t Generator::EmitCall(Program* program, size_t spec_index, int depth) {
  const spec::CompiledCall& decl = specs_.calls[spec_index];
  ProgCall call;
  call.spec_index = spec_index;
  for (const ArgSpec& arg : decl.args) {
    call.args.push_back(GenArg(program, arg, call.args, depth));
  }
  program->calls.push_back(std::move(call));
  return program->calls.size() - 1;
}

size_t Generator::PickSpec(const Program& program) {
  std::vector<uint64_t> weights(eligible_.size());
  // Adjacency: favour consumers of the resource the most recent call produced.
  std::string last_produced;
  if (!program.calls.empty()) {
    last_produced = specs_.calls[program.calls.back().spec_index].produces;
  }
  for (size_t slot = 0; slot < eligible_.size(); ++slot) {
    uint64_t weight = weights_[slot] + cov_credit_[slot] + focus_boost_[slot];
    if (!last_produced.empty()) {
      for (const ArgSpec& arg : specs_.calls[eligible_[slot]].args) {
        if (arg.kind == ArgKind::kResource && arg.resource_kind == last_produced) {
          weight += kAdjacencyBoost;
          break;
        }
      }
    }
    weights[slot] = weight;
  }
  return eligible_[rng_.WeightedIndex(weights)];
}

Program Generator::Generate() {
  Program program;
  size_t target = 1 + rng_.BiasedSize(options_.max_calls - 1);
  while (program.calls.size() < target && program.calls.size() < kWireMaxCalls - 4) {
    EmitCall(&program, PickSpec(program), 0);
  }
  return program;
}

void Generator::FixupRefs(Program* program) {
  for (size_t i = 0; i < program->calls.size(); ++i) {
    ProgCall& call = program->calls[i];
    const spec::CompiledCall& decl = specs_.calls[call.spec_index];
    for (size_t a = 0; a < call.args.size(); ++a) {
      ProgArg& arg = call.args[a];
      if (arg.kind != ProgArg::Kind::kResult) {
        continue;
      }
      bool valid = arg.ref >= 0 && static_cast<size_t>(arg.ref) < i;
      if (valid) {
        // Also require that the referenced call still produces the right kind.
        const spec::CompiledCall& producer =
            specs_.calls[program->calls[static_cast<size_t>(arg.ref)].spec_index];
        valid = a < decl.args.size() &&
                producer.produces == decl.args[a].resource_kind;
      }
      if (!valid) {
        int producer = a < decl.args.size()
                           ? FindProducer(*program, decl.args[a].resource_kind, i)
                           : -1;
        if (producer >= 0 && static_cast<size_t>(producer) < i) {
          arg = ProgArg::Result(producer);
        } else {
          arg = ProgArg::Scalar(0);
        }
      }
    }
  }
}

void Generator::MutateArgOp(Program* program) {
  if (program->calls.empty()) {
    return;
  }
  size_t call_index = rng_.Index(program->calls.size());
  ProgCall& call = program->calls[call_index];
  if (call.args.empty()) {
    return;
  }
  size_t arg_index = rng_.Index(call.args.size());
  const spec::CompiledCall& decl = specs_.calls[call.spec_index];
  if (arg_index >= decl.args.size()) {
    return;
  }
  const ArgSpec& arg_spec = decl.args[arg_index];
  ProgArg& arg = call.args[arg_index];

  if (arg.kind == ProgArg::Kind::kBytes && rng_.Chance(2, 3)) {
    // Havoc the payload in place rather than regenerating.
    arg.bytes = byte_mutator_.Mutate(arg.bytes, rng_);
    uint64_t cap = BufferCap(arg_spec);
    if (arg.bytes.size() > cap) {
      arg.bytes.resize(cap);
    }
    return;
  }
  if (arg.kind == ProgArg::Kind::kScalar && rng_.Chance(1, 2)) {
    // Local perturbation: increments and bitflips find neighbouring branches.
    switch (rng_.Below(3)) {
      case 0:
        arg.scalar += rng_.CoinFlip() ? 1 : -1;
        break;
      case 1:
        arg.scalar ^= 1ULL << rng_.Below(arg_spec.bits == 0 ? 32 : arg_spec.bits);
        break;
      default:
        arg.scalar = rng_.InterestingInt(arg_spec.bits);
        break;
    }
    return;
  }
  // Full regeneration (may rebind resources).
  Program prefix;
  prefix.calls.assign(program->calls.begin(),
                      program->calls.begin() + static_cast<std::ptrdiff_t>(call_index));
  arg = GenArg(&prefix, arg_spec, call.args, kMaxProducerDepth);  // no producer insertion
  if (arg.kind == ProgArg::Kind::kResult &&
      (arg.ref < 0 || static_cast<size_t>(arg.ref) >= call_index)) {
    arg = ProgArg::Scalar(0);
  }
}

void Generator::InsertCallOp(Program* program) {
  if (program->calls.size() >= kWireMaxCalls - 4) {
    return;
  }
  // Generate into a copy of the prefix so producer insertion lands correctly, then
  // reattach the suffix with refs shifted.
  size_t position = rng_.Index(program->calls.size() + 1);
  Program head;
  head.calls.assign(program->calls.begin(),
                    program->calls.begin() + static_cast<std::ptrdiff_t>(position));
  size_t before = head.calls.size();
  EmitCall(&head, PickSpec(head), 0);
  size_t inserted = head.calls.size() - before;
  for (size_t i = position; i < program->calls.size(); ++i) {
    ProgCall call = program->calls[i];
    for (ProgArg& arg : call.args) {
      if (arg.kind == ProgArg::Kind::kResult &&
          static_cast<size_t>(arg.ref) >= position) {
        arg.ref += static_cast<int>(inserted);
      }
    }
    head.calls.push_back(std::move(call));
  }
  *program = std::move(head);
}

void Generator::RemoveCallOp(Program* program) {
  if (program->calls.size() <= 1) {
    return;
  }
  size_t victim = rng_.Index(program->calls.size());
  program->calls.erase(program->calls.begin() + static_cast<std::ptrdiff_t>(victim));
  for (size_t i = 0; i < program->calls.size(); ++i) {
    for (ProgArg& arg : program->calls[i].args) {
      if (arg.kind == ProgArg::Kind::kResult && static_cast<size_t>(arg.ref) > victim) {
        --arg.ref;
      }
    }
  }
  FixupRefs(program);
}

void Generator::DuplicateCallOp(Program* program) {
  if (program->calls.empty() || program->calls.size() >= kWireMaxCalls - 4) {
    return;
  }
  size_t source = rng_.Index(program->calls.size());
  ProgCall copy = program->calls[source];
  // Append at the end so existing refs stay valid; the copy's own refs already point
  // earlier.
  program->calls.push_back(std::move(copy));
}

void Generator::AppendCallsOp(Program* program) {
  size_t add = 1 + rng_.Below(3);
  for (size_t i = 0; i < add && program->calls.size() < kWireMaxCalls - 4; ++i) {
    EmitCall(program, PickSpec(*program), 0);
  }
}

Program Generator::Mutate(const Program& seed) {
  Program program = seed;
  uint64_t rounds = 1 + rng_.Below(3);
  for (uint64_t round = 0; round < rounds; ++round) {
    switch (rng_.Below(10)) {
      case 0:
      case 1:
      case 2:
      case 3:
        MutateArgOp(&program);
        break;
      case 4:
      case 5:
        AppendCallsOp(&program);
        break;
      case 6:
        InsertCallOp(&program);
        break;
      case 7:
        RemoveCallOp(&program);
        break;
      case 8:
        DuplicateCallOp(&program);
        break;
      default:
        MutateArgOp(&program);
        break;
    }
  }
  if (program.calls.empty()) {
    return Generate();
  }
  return program;
}

Program Generator::Splice(const Program& a, const Program& b) {
  Program program;
  size_t head = a.calls.empty() ? 0 : rng_.Index(a.calls.size() + 1);
  size_t tail = b.calls.empty() ? 0 : rng_.Index(b.calls.size());
  program.calls.assign(a.calls.begin(), a.calls.begin() + static_cast<std::ptrdiff_t>(head));
  for (size_t i = tail; i < b.calls.size() && program.calls.size() < kWireMaxCalls - 4;
       ++i) {
    program.calls.push_back(b.calls[i]);
  }
  FixupRefs(&program);
  if (program.calls.empty()) {
    return Generate();
  }
  return program;
}

void Generator::SetFocus(const std::vector<size_t>& spec_indices) {
  std::fill(focus_boost_.begin(), focus_boost_.end(), 0);
  for (size_t spec_index : spec_indices) {
    if (spec_index >= spec_to_slot_.size()) {
      continue;
    }
    size_t slot = spec_to_slot_[spec_index];
    if (slot != SIZE_MAX) {
      focus_boost_[slot] = kFocusBoost;
    }
  }
}

void Generator::NotifyNewCoverage(const Program& program) {
  // Decay everyone slightly, then credit the participants.
  for (uint64_t& credit : cov_credit_) {
    credit -= credit / 16;
  }
  for (const ProgCall& call : program.calls) {
    size_t slot = spec_to_slot_[call.spec_index];
    if (slot != SIZE_MAX) {
      cov_credit_[slot] = std::min(cov_credit_[slot] + kCovCreditBoost, kCovCreditCap);
    }
  }
}

}  // namespace fuzz
}  // namespace eof
