// Edge-preserving program trimmer. Per-call coverage attribution tells the
// scheduler which calls of a program actually own its fresh edges; the trimmer
// minimizes the program to those calls plus the transitive closure of the
// result-producing calls they reference, so corpus seeds stay executable (refs
// remapped, producer chains intact) while dead tail/filler calls are dropped.
// This is the syzkaller minimization lesson at attribution granularity: no
// re-execution bisection needed for the common case, one verification replay
// suffices (the `eof trim` subcommand does exactly that).

#ifndef SRC_FUZZ_TRIMMER_H_
#define SRC_FUZZ_TRIMMER_H_

#include <cstdint>
#include <vector>

#include "src/fuzz/program.h"

namespace eof {
namespace fuzz {

struct TrimStats {
  size_t kept_calls = 0;
  size_t removed_calls = 0;
};

// Returns a copy of `program` keeping only the calls whose indices appear in
// `owner_calls` plus every call they (transitively) take a kResult reference
// from, with refs remapped to the compacted indices. Out-of-range owner indices
// are ignored; an empty effective keep set returns the program unchanged (a
// trim that keeps nothing explains nothing). `stats`, when non-null, reports
// kept/removed counts for the returned program.
Program TrimToCalls(const Program& program, const std::vector<uint32_t>& owner_calls,
                    TrimStats* stats = nullptr);

}  // namespace fuzz
}  // namespace eof

#endif  // SRC_FUZZ_TRIMMER_H_
