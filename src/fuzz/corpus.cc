#include "src/fuzz/corpus.h"

#include <algorithm>

#include "src/common/strings.h"
#include "src/fuzz/program_text.h"

namespace eof {
namespace fuzz {

bool Corpus::Add(Program program, uint64_t new_edges) {
  std::lock_guard<std::mutex> lock(mu_);
  return AddLocked(std::move(program), new_edges);
}

bool Corpus::AddLocked(Program program, uint64_t new_edges) {
  uint64_t hash = program.Hash();
  if (!seen_hashes_.insert(hash).second) {
    return false;
  }
  CorpusEntry entry;
  entry.program = std::move(program);
  entry.new_edges = new_edges;
  entry.added_seq = next_seq_++;
  entries_.push_back(std::move(entry));
  TrimIfNeededLocked();
  return true;
}

bool Corpus::Seen(const Program& program) {
  std::lock_guard<std::mutex> lock(mu_);
  return !seen_hashes_.insert(program.Hash()).second;
}

size_t Corpus::PickIndexLocked(Rng& rng) {
  std::vector<uint64_t> weights(entries_.size());
  uint64_t newest = entries_.back().added_seq;
  for (size_t i = 0; i < entries_.size(); ++i) {
    const CorpusEntry& entry = entries_[i];
    uint64_t weight = 4 + std::min<uint64_t>(entry.new_edges, 64);
    // Recency bonus: the freshest quarter of the corpus gets extra attention.
    if (newest - entry.added_seq < std::max<uint64_t>(entries_.size() / 4, 8)) {
      weight += 16;
    }
    // Over-picked seeds decay so the schedule keeps rotating.
    weight = weight / (1 + std::min<uint64_t>(entry.picks / 32, 8));
    weights[i] = std::max<uint64_t>(weight, 1);
  }
  size_t pick = rng.WeightedIndex(weights);
  ++entries_[pick].picks;
  return pick;
}

const Program* Corpus::PickSeed(Rng& rng) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.empty()) {
    return nullptr;
  }
  return &entries_[PickIndexLocked(rng)].program;
}

bool Corpus::PickSeedCopy(Rng& rng, Program* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.empty()) {
    return false;
  }
  *out = entries_[PickIndexLocked(rng)].program;
  return true;
}

uint64_t Corpus::ExportSince(
    const spec::CompiledSpecs& specs, uint64_t from_seq,
    std::vector<std::pair<std::string, uint64_t>>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const CorpusEntry& entry : entries_) {
    if (entry.added_seq >= from_seq) {
      out->emplace_back(SerializeProgramText(specs, entry.program), entry.new_edges);
    }
  }
  return next_seq_;
}

std::string Corpus::SaveText(const spec::CompiledSpecs& specs) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const CorpusEntry& entry : entries_) {
    out += StrFormat("# new_edges=%llu\n",
                     static_cast<unsigned long long>(entry.new_edges));
    out += SerializeProgramText(specs, entry.program);
    out += "\n";
  }
  return out;
}

Result<size_t> Corpus::LoadText(const spec::CompiledSpecs& specs, const std::string& text) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t admitted = 0;
  uint64_t new_edges = 1;
  std::string block;
  auto flush = [&]() {
    if (block.empty()) {
      return;
    }
    auto parsed = ParseProgramText(specs, block);
    if (parsed.ok() && AddLocked(std::move(parsed.value()), new_edges)) {
      ++admitted;
    }
    block.clear();
    new_edges = 1;
  };
  for (const std::string& line : StrSplit(text, '\n', /*keep_empty=*/true)) {
    std::string trimmed(StripWhitespace(line));
    if (trimmed.empty()) {
      flush();
      continue;
    }
    if (trimmed[0] == '#') {
      size_t tag = trimmed.find("new_edges=");
      if (tag != std::string::npos) {
        new_edges = strtoull(trimmed.c_str() + tag + 10, nullptr, 10);
      }
      continue;
    }
    block += trimmed + "\n";
  }
  flush();
  return admitted;
}

void Corpus::TrimIfNeededLocked() {
  if (entries_.size() <= max_entries_) {
    return;
  }
  // Drop the weakest third by discovery value, keeping admission order stable.
  std::vector<size_t> order(entries_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return entries_[a].new_edges > entries_[b].new_edges;
  });
  size_t keep = max_entries_ * 2 / 3;
  std::unordered_set<size_t> kept(order.begin(),
                                  order.begin() + static_cast<std::ptrdiff_t>(keep));
  std::vector<CorpusEntry> survivors;
  survivors.reserve(keep);
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (kept.count(i) != 0) {
      survivors.push_back(std::move(entries_[i]));
    }
  }
  entries_ = std::move(survivors);
}

}  // namespace fuzz
}  // namespace eof
