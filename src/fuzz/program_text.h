// Portable text form of fuzzer programs — the reproducer artifact format (one call per
// line, Syzkaller-style):
//
//   r0 = xQueueCreate(0x8, 0x10)
//   r1 = xQueueSend(r0, `68690a`, 0x0)     # bytes as backtick-quoted hex
//
// Round-trips through ParseProgramText against the same compiled specs, so crash
// reproducers survive across runs and machines.

#ifndef SRC_FUZZ_PROGRAM_TEXT_H_
#define SRC_FUZZ_PROGRAM_TEXT_H_

#include <string>

#include "src/common/status.h"
#include "src/fuzz/program.h"

namespace eof {
namespace fuzz {

// Serializes `program`. All scalars hex, bytes backtick-hex, refs rN.
std::string SerializeProgramText(const spec::CompiledSpecs& specs, const Program& program);

// Parses the text form; validates API names against `specs`, arity, and ref ordering.
Result<Program> ParseProgramText(const spec::CompiledSpecs& specs, const std::string& text);

}  // namespace fuzz
}  // namespace eof

#endif  // SRC_FUZZ_PROGRAM_TEXT_H_
