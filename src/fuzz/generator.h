// Spec-driven program generation and mutation (§4.5): builds API call sequences whose
// resource dependencies are satisfied by construction (producers inserted ahead of
// consumers), scores call selection by resource adjacency and recent-coverage credit, and
// mutates corpus seeds by argument perturbation, call insertion/removal/duplication,
// tail appends, and cross-seed splicing.

#ifndef SRC_FUZZ_GENERATOR_H_
#define SRC_FUZZ_GENERATOR_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/fuzz/byte_mutator.h"
#include "src/fuzz/program.h"
#include "src/spec/compiler.h"

namespace eof {
namespace fuzz {

struct GeneratorOptions {
  size_t max_calls = 12;

  // Global cap on buffer/string argument lengths; 0 = per-spec maxima. Baseline spec sets
  // (Tardis-style) ship with conservative fixed-size buffers — modelled as a 48-byte cap.
  uint64_t max_buffer_len = 0;

  // Use extended-tier calls and flag values (the LLM-mined material).
  bool use_extended = true;

  // Restrict generation to these subsystems (Table 4 confines EOF to http+json). Empty =
  // all subsystems.
  std::vector<std::string> allowed_subsystems;

  // Probability (per mille) of emitting an out-of-range scalar (fuzzers probe beyond
  // declared constraints occasionally).
  uint32_t wild_scalar_per_mille = 25;
};

class Generator {
 public:
  Generator(const spec::CompiledSpecs& specs, GeneratorOptions options, uint64_t seed);

  // Fresh random program.
  Program Generate();

  // Mutated copy of `seed` (1..3 stacked operations; refs stay valid).
  Program Mutate(const Program& seed);

  // Head of `a` + tail of `b`, refs rewired.
  Program Splice(const Program& a, const Program& b);

  // Coverage credit: boosts selection weight of every call in `program` (decays as other
  // calls earn credit). This is the "recent coverage" part of the paper's adjacency
  // scoring.
  void NotifyNewCoverage(const Program& program);

  // Directed mode: adds a flat selection boost to these spec indices (the calls the
  // scheduler attributes frontier edges to) until the next SetFocus replaces it.
  // An empty list clears the focus. Unknown / ineligible indices are ignored.
  void SetFocus(const std::vector<size_t>& spec_indices);

  // Indices (into specs) of calls eligible under the options.
  const std::vector<size_t>& eligible() const { return eligible_; }

  Rng& rng() { return rng_; }
  const spec::CompiledSpecs& specs() const { return specs_; }

 private:
  // Appends a call of `spec_index`, generating args; producers for unmet resource needs
  // are prepended (bounded recursion). Returns the call's index.
  size_t EmitCall(Program* program, size_t spec_index, int depth);

  ProgArg GenArg(Program* program, const ArgSpec& arg, const std::vector<ProgArg>& so_far,
                 int depth);

  // Index of an existing call producing `kind` before `before` (prefer recent), or -1.
  int FindProducer(const Program& program, const std::string& kind, size_t before);

  // A spec index that produces `kind`, or SIZE_MAX.
  size_t ProducerSpec(const std::string& kind);

  // Weighted choice over eligible calls; `after` (optional) biases toward consumers of
  // what the previous call produced (adjacency).
  size_t PickSpec(const Program& program);

  // Repairs kResult refs after structural edits (remove/reorder): dangling refs rebind to
  // a valid earlier producer or degrade to scalar 0.
  void FixupRefs(Program* program);

  void MutateArgOp(Program* program);
  void InsertCallOp(Program* program);
  void RemoveCallOp(Program* program);
  void DuplicateCallOp(Program* program);
  void AppendCallsOp(Program* program);

  uint64_t BufferCap(const ArgSpec& arg) const;

  const spec::CompiledSpecs& specs_;
  GeneratorOptions options_;
  Rng rng_;
  ByteMutator byte_mutator_;

  std::vector<size_t> eligible_;
  std::vector<uint64_t> weights_;      // parallel to eligible_
  std::vector<uint64_t> cov_credit_;   // parallel to eligible_
  std::vector<uint64_t> focus_boost_;  // parallel to eligible_; set by SetFocus
  std::vector<size_t> spec_to_slot_;   // specs index -> eligible slot (SIZE_MAX if not)
};

}  // namespace fuzz
}  // namespace eof

#endif  // SRC_FUZZ_GENERATOR_H_
