#include "src/fuzz/program.h"

#include "src/common/hash.h"
#include "src/common/strings.h"

namespace eof {
namespace fuzz {

WireProgram Program::ToWire(const spec::CompiledSpecs& specs) const {
  WireProgram wire;
  for (const ProgCall& call : calls) {
    WireCall wire_call;
    wire_call.api_id = specs.calls[call.spec_index].api_id;
    for (const ProgArg& arg : call.args) {
      switch (arg.kind) {
        case ProgArg::Kind::kScalar:
          wire_call.args.push_back(WireArg::Scalar(arg.scalar));
          break;
        case ProgArg::Kind::kResult:
          wire_call.args.push_back(WireArg::ResultRef(static_cast<uint16_t>(arg.ref)));
          break;
        case ProgArg::Kind::kBytes:
          wire_call.args.push_back(WireArg::Bytes(arg.bytes));
          break;
      }
    }
    wire.calls.push_back(std::move(wire_call));
  }
  return wire;
}

uint64_t Program::Hash() const {
  uint64_t hash = kFnvOffsetBasis;
  for (const ProgCall& call : calls) {
    hash = HashCombine(hash, call.spec_index);
    for (const ProgArg& arg : call.args) {
      hash = HashCombine(hash, static_cast<uint64_t>(arg.kind));
      switch (arg.kind) {
        case ProgArg::Kind::kScalar:
          hash = HashCombine(hash, arg.scalar);
          break;
        case ProgArg::Kind::kResult:
          hash = HashCombine(hash, static_cast<uint64_t>(arg.ref));
          break;
        case ProgArg::Kind::kBytes:
          hash = Fnv1aBytes(arg.bytes.data(), arg.bytes.size(), hash);
          break;
      }
    }
  }
  return hash;
}

bool Program::RefsValid() const {
  for (size_t i = 0; i < calls.size(); ++i) {
    for (const ProgArg& arg : calls[i].args) {
      if (arg.kind == ProgArg::Kind::kResult &&
          (arg.ref < 0 || static_cast<size_t>(arg.ref) >= i)) {
        return false;
      }
    }
  }
  return true;
}

std::string Program::Format(const spec::CompiledSpecs& specs) const {
  std::string out;
  for (size_t i = 0; i < calls.size(); ++i) {
    const ProgCall& call = calls[i];
    const spec::CompiledCall& decl = specs.calls[call.spec_index];
    out += StrFormat("r%zu = %s(", i, decl.name.c_str());
    for (size_t a = 0; a < call.args.size(); ++a) {
      if (a != 0) {
        out += ", ";
      }
      const ProgArg& arg = call.args[a];
      switch (arg.kind) {
        case ProgArg::Kind::kScalar:
          out += StrFormat("0x%llx", static_cast<unsigned long long>(arg.scalar));
          break;
        case ProgArg::Kind::kResult:
          out += StrFormat("r%d", arg.ref);
          break;
        case ProgArg::Kind::kBytes:
          if (arg.bytes.size() <= 16) {
            out += "\"" + BytesToHex(arg.bytes.data(), arg.bytes.size()) + "\"";
          } else {
            out += StrFormat("bytes[%zu]", arg.bytes.size());
          }
          break;
      }
    }
    out += ")\n";
  }
  return out;
}

}  // namespace fuzz
}  // namespace eof
