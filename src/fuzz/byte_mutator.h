// AFL-style havoc mutation over raw byte buffers. EOF uses it for buffer-typed arguments;
// the byte-buffer baselines (GDBFuzz, SHIFT, Gustave) use it as their whole input stage.

#ifndef SRC_FUZZ_BYTE_MUTATOR_H_
#define SRC_FUZZ_BYTE_MUTATOR_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace eof {
namespace fuzz {

class ByteMutator {
 public:
  explicit ByteMutator(uint64_t max_len) : max_len_(max_len) {}

  // Fresh random buffer, size biased small.
  std::vector<uint8_t> Random(Rng& rng) const;

  // Havoc: 1..8 stacked operations (bit flips, interesting values, arithmetic, block
  // delete/insert/duplicate, truncate/extend).
  std::vector<uint8_t> Mutate(const std::vector<uint8_t>& seed, Rng& rng) const;

  // Crossover: head of `a` spliced with tail of `b`.
  std::vector<uint8_t> Splice(const std::vector<uint8_t>& a, const std::vector<uint8_t>& b,
                              Rng& rng) const;

  uint64_t max_len() const { return max_len_; }

 private:
  uint64_t max_len_;
};

}  // namespace fuzz
}  // namespace eof

#endif  // SRC_FUZZ_BYTE_MUTATOR_H_
