#include "src/fuzz/program_text.h"

#include <cctype>

#include "src/common/strings.h"

namespace eof {
namespace fuzz {
namespace {

bool ParseHexByte(char hi, char lo, uint8_t* out) {
  auto digit = [](char c) -> int {
    if (c >= '0' && c <= '9') {
      return c - '0';
    }
    if (c >= 'a' && c <= 'f') {
      return c - 'a' + 10;
    }
    if (c >= 'A' && c <= 'F') {
      return c - 'A' + 10;
    }
    return -1;
  };
  int high = digit(hi);
  int low = digit(lo);
  if (high < 0 || low < 0) {
    return false;
  }
  *out = static_cast<uint8_t>(high << 4 | low);
  return true;
}

// Splits an argument list respecting backtick quoting.
Result<std::vector<std::string>> SplitArgs(const std::string& body, int line_number) {
  std::vector<std::string> args;
  std::string current;
  bool in_bytes = false;
  for (char c : body) {
    if (c == '`') {
      in_bytes = !in_bytes;
      current.push_back(c);
      continue;
    }
    if (c == ',' && !in_bytes) {
      std::string piece(StripWhitespace(current));
      if (piece.empty()) {
        return InvalidArgumentError(StrFormat("line %d: empty argument", line_number));
      }
      args.push_back(piece);
      current.clear();
      continue;
    }
    current.push_back(c);
  }
  if (in_bytes) {
    return InvalidArgumentError(StrFormat("line %d: unterminated byte literal", line_number));
  }
  std::string piece(StripWhitespace(current));
  if (!piece.empty()) {
    args.push_back(piece);
  }
  return args;
}

}  // namespace

std::string SerializeProgramText(const spec::CompiledSpecs& specs, const Program& program) {
  std::string out;
  for (size_t i = 0; i < program.calls.size(); ++i) {
    const ProgCall& call = program.calls[i];
    out += StrFormat("r%zu = %s(", i, specs.calls[call.spec_index].name.c_str());
    for (size_t a = 0; a < call.args.size(); ++a) {
      if (a != 0) {
        out += ", ";
      }
      const ProgArg& arg = call.args[a];
      switch (arg.kind) {
        case ProgArg::Kind::kScalar:
          out += StrFormat("0x%llx", static_cast<unsigned long long>(arg.scalar));
          break;
        case ProgArg::Kind::kResult:
          out += StrFormat("r%d", arg.ref);
          break;
        case ProgArg::Kind::kBytes:
          out += "`" + BytesToHex(arg.bytes.data(), arg.bytes.size()) + "`";
          break;
      }
    }
    out += ")\n";
  }
  return out;
}

Result<Program> ParseProgramText(const spec::CompiledSpecs& specs, const std::string& text) {
  Program program;
  int line_number = 0;
  for (const std::string& raw_line : StrSplit(text, '\n')) {
    ++line_number;
    std::string line(StripWhitespace(raw_line));
    if (line.empty() || line[0] == '#') {
      continue;
    }
    // rN = name(args)
    size_t equals = line.find('=');
    size_t open = line.find('(');
    size_t close = line.rfind(')');
    if (equals == std::string::npos || open == std::string::npos ||
        close == std::string::npos || close < open) {
      return InvalidArgumentError(StrFormat("line %d: malformed call", line_number));
    }
    std::string name(StripWhitespace(line.substr(equals + 1, open - equals - 1)));
    const spec::CompiledCall* decl = specs.FindByName(name);
    if (decl == nullptr) {
      return NotFoundError(StrFormat("line %d: unknown API '%s'", line_number,
                                     name.c_str()));
    }
    ASSIGN_OR_RETURN(std::vector<std::string> pieces,
                     SplitArgs(line.substr(open + 1, close - open - 1), line_number));
    if (pieces.size() != decl->args.size()) {
      return InvalidArgumentError(StrFormat("line %d: %s takes %zu args, got %zu",
                                            line_number, name.c_str(), decl->args.size(),
                                            pieces.size()));
    }
    ProgCall call;
    call.spec_index = static_cast<size_t>(decl - specs.calls.data());
    for (const std::string& piece : pieces) {
      if (piece[0] == '`') {
        if (piece.size() < 2 || piece.back() != '`' || (piece.size() - 2) % 2 != 0) {
          return InvalidArgumentError(
              StrFormat("line %d: bad byte literal '%s'", line_number, piece.c_str()));
        }
        std::vector<uint8_t> bytes;
        for (size_t i = 1; i + 1 < piece.size(); i += 2) {
          uint8_t byte = 0;
          if (!ParseHexByte(piece[i], piece[i + 1], &byte)) {
            return InvalidArgumentError(
                StrFormat("line %d: bad hex in byte literal", line_number));
          }
          bytes.push_back(byte);
        }
        call.args.push_back(ProgArg::Bytes(std::move(bytes)));
      } else if (piece[0] == 'r' && piece.size() > 1 &&
                 isdigit(static_cast<unsigned char>(piece[1])) != 0) {
        int ref = atoi(piece.c_str() + 1);
        if (ref < 0 || static_cast<size_t>(ref) >= program.calls.size()) {
          return InvalidArgumentError(
              StrFormat("line %d: forward/invalid reference '%s'", line_number,
                        piece.c_str()));
        }
        call.args.push_back(ProgArg::Result(ref));
      } else {
        uint64_t value = strtoull(piece.c_str(), nullptr, 0);
        call.args.push_back(ProgArg::Scalar(value));
      }
    }
    program.calls.push_back(std::move(call));
  }
  if (program.calls.empty()) {
    return InvalidArgumentError("no calls in program text");
  }
  return program;
}

}  // namespace fuzz
}  // namespace eof
