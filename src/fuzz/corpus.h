// Corpus management: interesting programs (new coverage or crashes) are retained and
// scheduled for further mutation, weighted by how much new coverage they brought and how
// recently they were added (§4.5: "If so, EOF saves the case to the corpus for further
// mutation ... otherwise it discards the case").
//
// Thread safety: all public methods are internally synchronised, so a board farm's
// workers may Add/Seen/PickSeedCopy on one shared corpus concurrently. PickSeed
// returns a pointer into the entry store and is only safe while the caller is the
// sole mutator (the single-threaded engine); concurrent schedulers must use
// PickSeedCopy, which copies the chosen program out under the lock.

#ifndef SRC_FUZZ_CORPUS_H_
#define SRC_FUZZ_CORPUS_H_

#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/fuzz/program.h"
#include "src/spec/compiler.h"

namespace eof {
namespace fuzz {

struct CorpusEntry {
  Program program;
  uint64_t new_edges = 0;   // edges this program discovered when added
  uint64_t added_seq = 0;   // admission order
  uint64_t picks = 0;       // times scheduled since admission
};

class Corpus {
 public:
  explicit Corpus(size_t max_entries = 4096) : max_entries_(max_entries) {}

  // Admits `program` if its hash is unseen. Returns true when added.
  bool Add(Program program, uint64_t new_edges);

  // True if an identical program was admitted before (also marks it seen, so repeated
  // non-interesting duplicates are cheap to skip).
  bool Seen(const Program& program);

  // Weighted seed choice: more new edges and fresher entries are favoured; heavily
  // re-picked entries decay. Returns nullptr while empty. Single-threaded callers
  // only — the pointer is invalidated by any concurrent Add/trim.
  const Program* PickSeed(Rng& rng);

  // Same schedule (identical RNG consumption), but copies the pick into `out` under
  // the lock. Returns false while empty. Safe under concurrent mutation.
  bool PickSeedCopy(Rng& rng, Program* out);

  // Serializes the whole corpus as reproducer texts separated by blank lines (campaign
  // checkpointing); LoadText re-admits every program that still parses against `specs`
  // and returns how many were admitted.
  std::string SaveText(const spec::CompiledSpecs& specs) const;
  Result<size_t> LoadText(const spec::CompiledSpecs& specs, const std::string& text);

  // Copies every entry admitted at or after sequence `from_seq` into `out` as
  // (reproducer text, new_edges) pairs, in admission order, and returns the
  // cursor to pass next time (one past the newest admitted sequence). This is
  // the fleet corpus-sync export: a worker remembers the cursor it last shipped
  // and uploads only the delta. Entries trimmed away between calls are simply
  // absent — the orchestrator already holds them. Safe under concurrent Add.
  uint64_t ExportSince(const spec::CompiledSpecs& specs, uint64_t from_seq,
                       std::vector<std::pair<std::string, uint64_t>>* out) const;

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }
  bool empty() const { return size() == 0; }

  // Snapshot of the entry store. Single-threaded callers only (tests, checkpointing).
  const std::vector<CorpusEntry>& entries() const { return entries_; }

 private:
  bool AddLocked(Program program, uint64_t new_edges);
  size_t PickIndexLocked(Rng& rng);
  void TrimIfNeededLocked();

  size_t max_entries_;
  mutable std::mutex mu_;
  uint64_t next_seq_ = 0;
  std::vector<CorpusEntry> entries_;
  std::unordered_set<uint64_t> seen_hashes_;
};

}  // namespace fuzz
}  // namespace eof

#endif  // SRC_FUZZ_CORPUS_H_
