#include "src/fuzz/trimmer.h"

namespace eof {
namespace fuzz {

Program TrimToCalls(const Program& program, const std::vector<uint32_t>& owner_calls,
                    TrimStats* stats) {
  size_t n = program.calls.size();
  std::vector<bool> keep(n, false);
  bool any = false;
  for (uint32_t index : owner_calls) {
    if (index < n) {
      keep[index] = true;
      any = true;
    }
  }
  if (!any) {
    if (stats != nullptr) {
      stats->kept_calls = n;
      stats->removed_calls = 0;
    }
    return program;
  }
  // Producer closure: kResult refs always point at earlier calls, so one
  // descending pass marks every transitive producer.
  for (size_t i = n; i-- > 0;) {
    if (!keep[i]) {
      continue;
    }
    for (const ProgArg& arg : program.calls[i].args) {
      if (arg.kind == ProgArg::Kind::kResult && arg.ref >= 0 &&
          static_cast<size_t>(arg.ref) < i) {
        keep[static_cast<size_t>(arg.ref)] = true;
      }
    }
  }

  std::vector<int> remap(n, -1);
  Program trimmed;
  for (size_t i = 0; i < n; ++i) {
    if (!keep[i]) {
      continue;
    }
    remap[i] = static_cast<int>(trimmed.calls.size());
    ProgCall call = program.calls[i];
    for (ProgArg& arg : call.args) {
      if (arg.kind == ProgArg::Kind::kResult && arg.ref >= 0 &&
          static_cast<size_t>(arg.ref) < n) {
        // The closure pass marked every referenced producer, so the remap is total.
        arg.ref = remap[static_cast<size_t>(arg.ref)];
      }
    }
    trimmed.calls.push_back(std::move(call));
  }
  if (stats != nullptr) {
    stats->kept_calls = trimmed.calls.size();
    stats->removed_calls = n - trimmed.calls.size();
  }
  return trimmed;
}

}  // namespace fuzz
}  // namespace eof
