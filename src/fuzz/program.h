// The fuzzer's program representation: a typed API-call sequence with resource references
// between calls (Syzkaller-style). Programs serialize to the agent wire format for
// execution and hash stably for corpus dedup.

#ifndef SRC_FUZZ_PROGRAM_H_
#define SRC_FUZZ_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/agent/wire.h"
#include "src/spec/compiler.h"

namespace eof {
namespace fuzz {

struct ProgArg {
  enum class Kind : uint8_t { kScalar, kResult, kBytes };
  Kind kind = Kind::kScalar;
  uint64_t scalar = 0;            // kScalar value
  int ref = -1;                   // kResult: index of the producing call
  std::vector<uint8_t> bytes;     // kBytes payload

  static ProgArg Scalar(uint64_t value) {
    ProgArg arg;
    arg.kind = Kind::kScalar;
    arg.scalar = value;
    return arg;
  }
  static ProgArg Result(int call_index) {
    ProgArg arg;
    arg.kind = Kind::kResult;
    arg.ref = call_index;
    return arg;
  }
  static ProgArg Bytes(std::vector<uint8_t> data) {
    ProgArg arg;
    arg.kind = Kind::kBytes;
    arg.bytes = std::move(data);
    return arg;
  }
};

struct ProgCall {
  size_t spec_index = 0;  // index into CompiledSpecs::calls
  std::vector<ProgArg> args;
};

struct Program {
  std::vector<ProgCall> calls;

  // Serializes against `specs` (spec_index -> api_id binding).
  WireProgram ToWire(const spec::CompiledSpecs& specs) const;

  // Stable content hash for corpus dedup.
  uint64_t Hash() const;

  // Structural sanity: every kResult ref points at an earlier call. Used as a test
  // invariant after every mutation.
  bool RefsValid() const;

  // Human-readable dump ("xTaskCreate(\"t\", 256, 5) -> r0 ...") for crash reports.
  std::string Format(const spec::CompiledSpecs& specs) const;
};

}  // namespace fuzz
}  // namespace eof

#endif  // SRC_FUZZ_PROGRAM_H_
