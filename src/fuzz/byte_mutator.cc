#include "src/fuzz/byte_mutator.h"

#include <algorithm>

namespace eof {
namespace fuzz {

std::vector<uint8_t> ByteMutator::Random(Rng& rng) const {
  std::vector<uint8_t> out(rng.BiasedSize(max_len_));
  for (auto& byte : out) {
    byte = static_cast<uint8_t>(rng.Next());
  }
  return out;
}

std::vector<uint8_t> ByteMutator::Mutate(const std::vector<uint8_t>& seed, Rng& rng) const {
  std::vector<uint8_t> out = seed;
  if (out.empty()) {
    return Random(rng);
  }
  uint64_t rounds = 1 + rng.Below(8);
  for (uint64_t round = 0; round < rounds; ++round) {
    switch (rng.Below(8)) {
      case 0: {  // bit flip
        size_t pos = rng.Index(out.size());
        out[pos] ^= static_cast<uint8_t>(1u << rng.Below(8));
        break;
      }
      case 1: {  // random byte
        out[rng.Index(out.size())] = static_cast<uint8_t>(rng.Next());
        break;
      }
      case 2: {  // interesting 8/16-bit value
        size_t pos = rng.Index(out.size());
        uint64_t value = rng.InterestingInt(16);
        out[pos] = static_cast<uint8_t>(value);
        if (pos + 1 < out.size() && rng.CoinFlip()) {
          out[pos + 1] = static_cast<uint8_t>(value >> 8);
        }
        break;
      }
      case 3: {  // byte arithmetic
        size_t pos = rng.Index(out.size());
        out[pos] = static_cast<uint8_t>(out[pos] + rng.Range(1, 32) * (rng.CoinFlip() ? 1 : -1));
        break;
      }
      case 4: {  // delete block
        if (out.size() > 1) {
          size_t start = rng.Index(out.size());
          size_t len = 1 + rng.Below(std::min<uint64_t>(out.size() - start, 16));
          out.erase(out.begin() + static_cast<std::ptrdiff_t>(start),
                    out.begin() + static_cast<std::ptrdiff_t>(start + len));
        }
        break;
      }
      case 5: {  // insert random block
        if (out.size() < max_len_) {
          size_t pos = rng.Index(out.size() + 1);
          size_t len = 1 + rng.Below(std::min<uint64_t>(max_len_ - out.size(), 16));
          std::vector<uint8_t> block(len);
          for (auto& byte : block) {
            byte = static_cast<uint8_t>(rng.Next());
          }
          out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos), block.begin(),
                     block.end());
        }
        break;
      }
      case 6: {  // duplicate block
        if (!out.empty() && out.size() < max_len_) {
          size_t start = rng.Index(out.size());
          size_t len =
              1 + rng.Below(std::min<uint64_t>({out.size() - start, max_len_ - out.size(),
                                                16}));
          std::vector<uint8_t> block(out.begin() + static_cast<std::ptrdiff_t>(start),
                                     out.begin() + static_cast<std::ptrdiff_t>(start + len));
          size_t pos = rng.Index(out.size() + 1);
          out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos), block.begin(),
                     block.end());
        }
        break;
      }
      default: {  // truncate or extend
        if (rng.CoinFlip() && out.size() > 1) {
          out.resize(1 + rng.Below(out.size()));
        } else if (out.size() < max_len_) {
          size_t add = 1 + rng.Below(std::min<uint64_t>(max_len_ - out.size(), 32));
          for (size_t i = 0; i < add; ++i) {
            out.push_back(static_cast<uint8_t>(rng.Next()));
          }
        }
        break;
      }
    }
  }
  if (out.size() > max_len_) {
    out.resize(max_len_);
  }
  return out;
}

std::vector<uint8_t> ByteMutator::Splice(const std::vector<uint8_t>& a,
                                         const std::vector<uint8_t>& b, Rng& rng) const {
  if (a.empty()) {
    return b;
  }
  if (b.empty()) {
    return a;
  }
  size_t head = rng.Index(a.size() + 1);
  size_t tail = rng.Index(b.size() + 1);
  std::vector<uint8_t> out(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(head));
  out.insert(out.end(), b.begin() + static_cast<std::ptrdiff_t>(tail), b.end());
  if (out.size() > max_len_) {
    out.resize(max_len_);
  }
  return out;
}

}  // namespace fuzz
}  // namespace eof
