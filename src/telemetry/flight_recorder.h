// Per-board flight recorder: three bounded ring buffers capturing the last N
// debug-port operations, UART lines, and executor events of one board session.
// When a monitor fires or a liveness watchdog trips, the executor dumps the rings
// as a structured crash report — the post-hoc context (what the link was doing,
// what the target last printed, what the session was executing) that a deduped
// BugSignature alone cannot carry.
//
// Hot-path discipline: every ring slot is preallocated at construction and appends
// copy plain values (or truncate into fixed char buffers), so recording performs no
// heap allocation and never touches the virtual clock or any RNG — fuzzing results
// are bit-identical with the recorder attached or not. A recorder belongs to one
// board session and is written from that session's thread only (the same
// confinement rule as Tracer); distinct boards record concurrently without sharing.

#ifndef SRC_TELEMETRY_FLIGHT_RECORDER_H_
#define SRC_TELEMETRY_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/vclock.h"
#include "src/telemetry/journal.h"

namespace eof {
namespace telemetry {

// Debug-port operation classes the recorder distinguishes. Coarser than PortOp
// (run-control and UART drains are recorded too) but fine enough to reconstruct
// the link conversation leading up to a crash.
enum class FlightPortOp : uint8_t {
  kRead,
  kWrite,
  kSubU32,
  kSetBreakpoint,
  kContinue,       // exec-continue round trip; address = stop pc when it returned
  kReadPc,
  kChecksum,
  kFlash,
  kReset,
  kUartDrain,      // size = drained bytes
  kPeripheral,
  kWarmRestore,    // snapshot-path core restore (no boot ROM)
};

// Short stable mnemonic for rendering ("rd", "wr", "cont", ...).
const char* FlightPortOpName(FlightPortOp op);

// Fixed-size record of one link operation. Plain values only: appending is a
// couple of stores into a preallocated slot.
struct PortOpRecord {
  VirtualTime at = 0;
  FlightPortOp op = FlightPortOp::kRead;
  uint64_t address = 0;
  uint64_t size = 0;
  bool ok = true;
};

// One captured UART line, truncated into an inline buffer so the hot path never
// allocates. `length` is the kept byte count.
inline constexpr size_t kUartLineCapacity = 96;
struct UartLineRecord {
  VirtualTime at = 0;
  uint16_t length = 0;
  char text[kUartLineCapacity] = {};

  std::string_view View() const { return std::string_view(text, length); }
};

// One executor lifecycle event. `label` must point at a string literal (or other
// storage outliving the recorder) — the recorder stores the pointer, not a copy.
struct ExecEventRecord {
  VirtualTime at = 0;
  const char* label = "";
  uint64_t value = 0;
};

// A point-in-time copy of the rings, oldest entry first, plus lifetime totals so
// a consumer can tell how much history the bounds discarded.
struct FlightDump {
  std::string reason;          // what triggered the dump ("crash", "pc_stall", ...)
  std::string last_restore = "none";  // restore mode preceding the trigger
                                      // ("none" | "cold" | "snapshot")
  VirtualTime at = 0;          // board clock at dump time
  uint64_t port_ops_seen = 0;  // lifetime appends (>= port_ops.size() when wrapped)
  uint64_t uart_lines_seen = 0;
  uint64_t events_seen = 0;
  std::vector<PortOpRecord> port_ops;
  std::vector<std::string> uart_tail;
  std::vector<ExecEventRecord> events;

  // The individual rings as newline-joined text columns ("t=... rd addr=0x... " /
  // raw UART lines / "t=... label=value"), the form embedded in journal rows.
  std::string PortOpsText() const;
  std::string UartTailText() const;
  std::string EventsText() const;

  // Human-readable multi-line rendering (the form embedded in BugReport and the
  // `eof report` bug table).
  std::string RenderText() const;

  // The rings as compact newline-joined text columns, for embedding in a
  // "crash_dump" / "bug_report" journal row. Also carries the reason and totals.
  std::vector<EventField> ToEventFields() const;
};

class FlightRecorder {
 public:
  struct Options {
    size_t port_op_capacity = 128;
    size_t uart_line_capacity = 48;
    size_t event_capacity = 64;
  };

  FlightRecorder();  // default capacities (gcc needs the nested-Options default
                     // argument out of line, so this delegates in the .cc)
  explicit FlightRecorder(Options options);

  // Appends one link-operation record (overwrites the oldest beyond capacity).
  void RecordPortOp(VirtualTime at, FlightPortOp op, uint64_t address, uint64_t size,
                    bool ok);

  // Splits `text` on '\n' and appends each non-empty line (truncated to
  // kUartLineCapacity bytes) to the UART ring.
  void RecordUartText(VirtualTime at, std::string_view text);

  // Appends one executor event. `label` must be a string literal.
  void RecordEvent(VirtualTime at, const char* label, uint64_t value = 0);

  // Forgets all recorded history (the session totals included). Cold boots call
  // this — a power cycle wipes the board-session context the rings describe —
  // while snapshot restores leave the rings running, since the session continues.
  void Clear();

  // Lifetime append totals (not bounded by capacity).
  uint64_t port_ops_seen() const { return port_ops_seen_; }
  uint64_t uart_lines_seen() const { return uart_lines_seen_; }
  uint64_t events_seen() const { return events_seen_; }

  // Copies the rings out, oldest first. Allocation happens here (the cold path),
  // never during recording.
  FlightDump Dump(const char* reason, VirtualTime at) const;

 private:
  std::vector<PortOpRecord> port_ops_;
  std::vector<UartLineRecord> uart_lines_;
  std::vector<ExecEventRecord> events_;
  uint64_t port_ops_seen_ = 0;
  uint64_t uart_lines_seen_ = 0;
  uint64_t events_seen_ = 0;
};

}  // namespace telemetry
}  // namespace eof

#endif  // SRC_TELEMETRY_FLIGHT_RECORDER_H_
