#include "src/telemetry/flight_recorder.h"

#include <algorithm>
#include <cstring>

#include "src/common/strings.h"

namespace eof {
namespace telemetry {

const char* FlightPortOpName(FlightPortOp op) {
  switch (op) {
    case FlightPortOp::kRead:
      return "rd";
    case FlightPortOp::kWrite:
      return "wr";
    case FlightPortOp::kSubU32:
      return "sub32";
    case FlightPortOp::kSetBreakpoint:
      return "bp";
    case FlightPortOp::kContinue:
      return "cont";
    case FlightPortOp::kReadPc:
      return "pc";
    case FlightPortOp::kChecksum:
      return "cksum";
    case FlightPortOp::kFlash:
      return "flash";
    case FlightPortOp::kReset:
      return "reset";
    case FlightPortOp::kUartDrain:
      return "uart";
    case FlightPortOp::kPeripheral:
      return "periph";
    case FlightPortOp::kWarmRestore:
      return "warm";
  }
  return "?";
}

FlightRecorder::FlightRecorder() : FlightRecorder(Options()) {}

FlightRecorder::FlightRecorder(Options options) {
  port_ops_.resize(std::max<size_t>(options.port_op_capacity, 1));
  uart_lines_.resize(std::max<size_t>(options.uart_line_capacity, 1));
  events_.resize(std::max<size_t>(options.event_capacity, 1));
}

void FlightRecorder::RecordPortOp(VirtualTime at, FlightPortOp op, uint64_t address,
                                  uint64_t size, bool ok) {
  PortOpRecord& slot = port_ops_[port_ops_seen_ % port_ops_.size()];
  slot.at = at;
  slot.op = op;
  slot.address = address;
  slot.size = size;
  slot.ok = ok;
  ++port_ops_seen_;
}

void FlightRecorder::RecordUartText(VirtualTime at, std::string_view text) {
  size_t begin = 0;
  while (begin < text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    size_t length = end - begin;
    if (length > 0) {
      UartLineRecord& slot = uart_lines_[uart_lines_seen_ % uart_lines_.size()];
      slot.at = at;
      slot.length = static_cast<uint16_t>(std::min(length, kUartLineCapacity));
      std::memcpy(slot.text, text.data() + begin, slot.length);
      ++uart_lines_seen_;
    }
    begin = end + 1;
  }
}

void FlightRecorder::RecordEvent(VirtualTime at, const char* label, uint64_t value) {
  ExecEventRecord& slot = events_[events_seen_ % events_.size()];
  slot.at = at;
  slot.label = label;
  slot.value = value;
  ++events_seen_;
}

void FlightRecorder::Clear() {
  // The ring slots need no scrubbing: Dump() only walks [seen - kept, seen), so
  // zeroing the lifetime counters is enough to forget everything.
  port_ops_seen_ = 0;
  uart_lines_seen_ = 0;
  events_seen_ = 0;
}

namespace {

// Copies a ring out oldest-first: entries [seen - kept, seen) in append order.
template <typename Record, typename Push>
void UnrollRing(const std::vector<Record>& ring, uint64_t seen, Push push) {
  uint64_t kept = std::min<uint64_t>(seen, ring.size());
  for (uint64_t i = seen - kept; i < seen; ++i) {
    push(ring[i % ring.size()]);
  }
}

}  // namespace

FlightDump FlightRecorder::Dump(const char* reason, VirtualTime at) const {
  FlightDump dump;
  dump.reason = reason;
  dump.at = at;
  dump.port_ops_seen = port_ops_seen_;
  dump.uart_lines_seen = uart_lines_seen_;
  dump.events_seen = events_seen_;
  UnrollRing(port_ops_, port_ops_seen_,
             [&dump](const PortOpRecord& record) { dump.port_ops.push_back(record); });
  UnrollRing(uart_lines_, uart_lines_seen_, [&dump](const UartLineRecord& record) {
    dump.uart_tail.push_back(std::string(record.View()));
  });
  UnrollRing(events_, events_seen_,
             [&dump](const ExecEventRecord& record) { dump.events.push_back(record); });
  return dump;
}

std::string FlightDump::PortOpsText() const {
  std::string out;
  for (const PortOpRecord& record : port_ops) {
    if (!out.empty()) {
      out += '\n';
    }
    out += StrFormat("t=%llu %s addr=0x%llx size=%llu%s",
                     static_cast<unsigned long long>(record.at),
                     FlightPortOpName(record.op),
                     static_cast<unsigned long long>(record.address),
                     static_cast<unsigned long long>(record.size),
                     record.ok ? "" : " FAIL");
  }
  return out;
}

std::string FlightDump::EventsText() const {
  std::string out;
  for (const ExecEventRecord& record : events) {
    if (!out.empty()) {
      out += '\n';
    }
    out += StrFormat("t=%llu %s=%llu", static_cast<unsigned long long>(record.at),
                     record.label, static_cast<unsigned long long>(record.value));
  }
  return out;
}

std::string FlightDump::UartTailText() const {
  std::string out;
  for (const std::string& line : uart_tail) {
    if (!out.empty()) {
      out += '\n';
    }
    out += line;
  }
  return out;
}

std::string FlightDump::RenderText() const {
  std::string out = StrFormat(
      "flight dump: reason=%s t=%llu port_ops=%zu/%llu uart_lines=%zu/%llu "
      "events=%zu/%llu\n",
      reason.c_str(), static_cast<unsigned long long>(at), port_ops.size(),
      static_cast<unsigned long long>(port_ops_seen), uart_tail.size(),
      static_cast<unsigned long long>(uart_lines_seen), events.size(),
      static_cast<unsigned long long>(events_seen));
  out += "-- port ops --\n";
  out += PortOpsText();
  out += "\n-- uart tail --\n";
  out += UartTailText();
  out += "\n-- events --\n";
  out += EventsText();
  out += '\n';
  return out;
}

std::vector<EventField> FlightDump::ToEventFields() const {
  std::vector<EventField> fields;
  fields.push_back(EventField::Text("reason", reason));
  fields.push_back(EventField::Text("last_restore", last_restore));
  fields.push_back(EventField::Uint("port_ops_seen", port_ops_seen));
  fields.push_back(EventField::Uint("uart_lines_seen", uart_lines_seen));
  fields.push_back(EventField::Uint("events_seen", events_seen));
  fields.push_back(EventField::Text("port_ops", PortOpsText()));
  fields.push_back(EventField::Text("uart_tail", UartTailText()));
  fields.push_back(EventField::Text("events", EventsText()));
  return fields;
}

}  // namespace telemetry
}  // namespace eof
