// Prometheus text exposition (format version 0.0.4) for MetricsSnapshot.
//
// Mapping: every metric name is sanitized into the Prometheus grammar and
// prefixed "eof_" ("span.exec_continue_us" -> "eof_span_exec_continue_us");
// counters gain the "_total" suffix; gauges render as-is; histograms render the
// canonical cumulative "_bucket{le=...}" series — the snapshot's overflow
// bucket becomes le="+Inf" — plus "_sum" and "_count". Base labels (campaign,
// worker) are appended to every sample, escaped per the exposition rules.

#ifndef SRC_TELEMETRY_PROMETHEUS_H_
#define SRC_TELEMETRY_PROMETHEUS_H_

#include <string>
#include <utility>
#include <vector>

#include "src/telemetry/metrics.h"

namespace eof {
namespace telemetry {

// Label set applied to every rendered sample, in the given order.
using PrometheusLabels = std::vector<std::pair<std::string, std::string>>;

// The HTTP Content-Type for this exposition format.
inline constexpr char kPrometheusContentType[] =
    "text/plain; version=0.0.4; charset=utf-8";

// Sanitizes a registry metric name into a Prometheus metric name: every
// character outside [a-zA-Z0-9_:] becomes '_', and the result is prefixed
// "eof_" (unless the name already starts with it).
std::string PrometheusName(const std::string& name);

// Escapes a label value (backslash, double quote, newline).
std::string PrometheusEscape(const std::string& value);

// Renders "{k1=\"v1\",k2=\"v2\"}" — empty labels render as "".
std::string PrometheusLabelSet(const PrometheusLabels& labels);

// Appends one "# TYPE" header line; emit once per metric family.
void AppendPrometheusType(std::string* out, const std::string& name,
                          const char* type);

// Appends one sample line: name{labels} value.
void AppendPrometheusSample(std::string* out, const std::string& name,
                            const PrometheusLabels& labels, uint64_t value);

// Renders a whole snapshot. Counters sort before gauges before histograms;
// within each kind the registry's map order (lexicographic) keeps the output
// stable for golden tests.
std::string RenderPrometheus(const MetricsSnapshot& snapshot,
                             const PrometheusLabels& base_labels = {});

}  // namespace telemetry
}  // namespace eof

#endif  // SRC_TELEMETRY_PROMETHEUS_H_
