#include "src/telemetry/snapshot.h"

#include <algorithm>

namespace eof {
namespace telemetry {

namespace {

// Rate per virtual second, guarded against a zero window.
double PerVirtualSecond(uint64_t count, VirtualTime window) {
  if (window == 0) {
    return 0;
  }
  return static_cast<double>(count) * kVirtualSecond / static_cast<double>(window);
}

// Sum of a span histogram ("span.<name>_us"), 0 when the span never ran.
uint64_t SpanSum(const MetricsSnapshot& snapshot, const char* name) {
  auto it = snapshot.histograms.find(name);
  return it == snapshot.histograms.end() ? 0 : it->second.sum;
}

// The per-board columns of a snapshot row. The registry is sampled at emission
// time, which can run marginally ahead of the boundary stamp `at` — snapshots are
// "state as of crossing the boundary", not an exact integral.
void AppendBoardColumns(const MetricsSnapshot& snapshot, VirtualTime at, Event* event) {
  uint64_t execs = snapshot.CounterValue("exec.execs");
  event->fields.push_back(EventField::Uint("execs", execs));
  event->fields.push_back(EventField::Real("execs_per_vsec", PerVirtualSecond(execs, at)));
  event->fields.push_back(
      EventField::Uint("coverage", snapshot.GaugeValue("exec.local_coverage")));
  event->fields.push_back(
      EventField::Uint("edges_drained", snapshot.CounterValue("exec.edges_drained")));
  event->fields.push_back(EventField::Uint(
      "overlapped_drains", snapshot.CounterValue("exec.overlapped_drains")));
  event->fields.push_back(EventField::Uint(
      "drain_overlap_saved_us", snapshot.CounterValue("exec.drain_overlap_saved_us")));
  event->fields.push_back(
      EventField::Uint("rejected", snapshot.CounterValue("exec.rejected")));
  event->fields.push_back(EventField::Uint("stalls", snapshot.CounterValue("exec.stalls")));
  event->fields.push_back(
      EventField::Uint("timeouts", snapshot.CounterValue("exec.timeouts")));
  event->fields.push_back(
      EventField::Uint("restores", snapshot.CounterValue("exec.restores")));
  event->fields.push_back(EventField::Uint(
      "snapshot_restores", snapshot.CounterValue("exec.snapshot_restores")));
  event->fields.push_back(EventField::Uint(
      "snapshot_bytes", snapshot.CounterValue("exec.snapshot_bytes")));
  event->fields.push_back(EventField::Uint("resets", snapshot.CounterValue("link.resets")));
  event->fields.push_back(
      EventField::Uint("warm_restores", snapshot.CounterValue("link.warm_restores")));
  event->fields.push_back(
      EventField::Uint("link_transactions", snapshot.CounterValue("link.transactions")));
  event->fields.push_back(
      EventField::Uint("link_batches", snapshot.CounterValue("link.batches")));
  event->fields.push_back(
      EventField::Uint("link_timeouts", snapshot.CounterValue("link.timeouts")));
  event->fields.push_back(
      EventField::Uint("flash_bytes", snapshot.CounterValue("link.flash_bytes")));
  event->fields.push_back(EventField::Uint(
      "flash_skipped_bytes", snapshot.CounterValue("link.flash_skipped_bytes")));
  // Where the board's virtual time went (sums of the tracer's span histograms):
  // running test cases, draining coverage, reflashing, recovering from watchdog
  // trips, and the one-off deploy. The `eof report` time-accounting table divides
  // these by the board clock.
  event->fields.push_back(
      EventField::Uint("exec_us", SpanSum(snapshot, "span.exec_continue_us")));
  event->fields.push_back(
      EventField::Uint("drain_us", SpanSum(snapshot, "span.coverage_drain_us")));
  event->fields.push_back(
      EventField::Uint("reflash_us", SpanSum(snapshot, "span.reflash_us")));
  event->fields.push_back(
      EventField::Uint("recovery_us", SpanSum(snapshot, "span.watchdog_recovery_us")));
  event->fields.push_back(
      EventField::Uint("deploy_us", SpanSum(snapshot, "span.deploy_us")));
}

}  // namespace

SnapshotEmitter::SnapshotEmitter(std::vector<const MetricsRegistry*> boards,
                                 std::function<CampaignView()> view, EventSink* sink,
                                 VirtualDuration interval, VirtualDuration budget,
                                 std::vector<int> labels, bool emit_farm_rows)
    : boards_(std::move(boards)),
      view_(std::move(view)),
      sink_(sink),
      interval_(interval),
      budget_(budget),
      labels_(std::move(labels)),
      emit_farm_rows_(emit_farm_rows),
      elapsed_(boards_.size(), 0),
      next_board_(boards_.size(), interval),
      done_(boards_.size(), false),
      next_farm_(interval) {}

void SnapshotEmitter::MaybeEmit(int worker, VirtualTime elapsed) {
  if (sink_ == nullptr || interval_ == 0) {
    return;
  }
  size_t slot = static_cast<size_t>(worker);
  std::lock_guard<std::mutex> lock(mu_);
  if (slot >= boards_.size()) {
    return;
  }
  elapsed_[slot] = std::max(elapsed_[slot], elapsed);
  while (next_board_[slot] <= budget_ && elapsed_[slot] >= next_board_[slot]) {
    EmitBoardLocked(worker, next_board_[slot]);
    next_board_[slot] += interval_;
  }
  VirtualTime frontier = FrontierLocked();
  while (emit_farm_rows_ && next_farm_ <= budget_ && frontier >= next_farm_) {
    EmitFarmLocked(next_farm_);
    next_farm_ += interval_;
  }
}

void SnapshotEmitter::WorkerDone(int worker, VirtualTime elapsed) {
  if (sink_ == nullptr || interval_ == 0) {
    return;
  }
  size_t slot = static_cast<size_t>(worker);
  std::lock_guard<std::mutex> lock(mu_);
  if (slot >= boards_.size()) {
    return;
  }
  done_[slot] = true;
  elapsed_[slot] = std::max(elapsed_[slot], elapsed);
  if (elapsed_[slot] > 0) {
    // Closing board row: the session's final counters at its final clock.
    EmitBoardLocked(worker, elapsed_[slot]);
  }
  VirtualTime frontier = FrontierLocked();
  while (emit_farm_rows_ && next_farm_ <= budget_ && frontier >= next_farm_) {
    EmitFarmLocked(next_farm_);
    next_farm_ += interval_;
  }
}

void SnapshotEmitter::Finish(VirtualTime elapsed) {
  if (sink_ == nullptr) {
    return;
  }
  if (emit_farm_rows_) {
    std::lock_guard<std::mutex> lock(mu_);
    EmitFarmLocked(elapsed);
  }
  sink_->Flush();
}

VirtualTime SnapshotEmitter::FrontierLocked() const {
  VirtualTime frontier = budget_;
  for (size_t i = 0; i < elapsed_.size(); ++i) {
    if (!done_[i]) {
      frontier = std::min(frontier, elapsed_[i]);
    }
  }
  return frontier;
}

void SnapshotEmitter::EmitBoardLocked(int worker, VirtualTime at) {
  Event event;
  event.at = at;
  event.type = "board_snapshot";
  event.worker = static_cast<size_t>(worker) < labels_.size()
                     ? labels_[static_cast<size_t>(worker)]
                     : worker;
  AppendBoardColumns(boards_[static_cast<size_t>(worker)]->Snapshot(), at, &event);
  sink_->Emit(event);
}

void SnapshotEmitter::EmitFarmLocked(VirtualTime at) {
  MetricsSnapshot merged;
  for (const MetricsRegistry* board : boards_) {
    merged.Merge(board->Snapshot());
  }
  Event event;
  event.at = at;
  event.type = "farm_snapshot";
  event.fields.push_back(EventField::Uint("boards", boards_.size()));
  AppendBoardColumns(merged, at, &event);
  if (view_) {
    CampaignView view = view_();
    // Campaign-global truths override the merged per-board approximations.
    event.fields.push_back(EventField::Uint("campaign_coverage", view.coverage));
    event.fields.push_back(EventField::Uint("corpus", view.corpus));
    event.fields.push_back(EventField::Uint("campaign_execs", view.execs));
    event.fields.push_back(EventField::Uint("crashes", view.crashes));
    event.fields.push_back(EventField::Uint("bugs", view.bugs));
    event.fields.push_back(EventField::Uint("bugs_rejected", view.bugs_rejected));
    event.fields.push_back(EventField::Uint("directed_hits", view.directed_hits));
    event.fields.push_back(EventField::Uint("frontier", view.frontier));
    event.fields.push_back(
        EventField::Uint("trim_removed_calls", view.trim_removed_calls));
    event.fields.push_back(EventField::Uint("trim_kept_calls", view.trim_kept_calls));
  }
  event.fields.push_back(EventField::Uint("journal_dropped", sink_->dropped()));
  sink_->Emit(event);
}

}  // namespace telemetry
}  // namespace eof
