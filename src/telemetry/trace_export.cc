#include "src/telemetry/trace_export.h"

#include <algorithm>
#include <set>

#include "src/common/strings.h"
#include "src/telemetry/journal.h"

namespace eof {
namespace telemetry {

namespace {

struct TraceEvent {
  uint64_t ts = 0;
  uint64_t dur = 0;  // complete events only
  int tid = 0;
  char phase = 'X';  // 'X' complete, 'i' instant
  bool global_scope = false;
  std::string name;
  std::string args;  // rendered {"k":v,...}, may be empty
};

void AppendEvent(std::string* out, const TraceEvent& event) {
  *out += StrFormat("{\"name\":\"%s\",\"ph\":\"%c\",\"ts\":%llu",
                    JsonEscape(event.name).c_str(), event.phase,
                    static_cast<unsigned long long>(event.ts));
  if (event.phase == 'X') {
    *out += StrFormat(",\"dur\":%llu", static_cast<unsigned long long>(event.dur));
  }
  if (event.phase == 'i') {
    *out += StrFormat(",\"s\":\"%s\"", event.global_scope ? "g" : "t");
  }
  *out += StrFormat(",\"pid\":0,\"tid\":%d", event.tid);
  if (!event.args.empty()) {
    *out += StrFormat(",\"args\":%s", event.args.c_str());
  }
  *out += "}";
}

}  // namespace

std::string RenderChromeTrace(const std::vector<JournalRow>& rows) {
  std::vector<TraceEvent> events;
  std::set<int> lanes;
  for (const JournalRow& row : rows) {
    if (row.type == "span") {
      TraceEvent event;
      event.name = row.Text("span");
      event.phase = 'X';
      event.ts = row.Uint("begin_us");
      event.dur = row.Uint("dur_us");
      event.tid = row.worker >= 0 ? row.worker : 0;
      event.args = StrFormat("{\"span_id\":%llu}",
                             static_cast<unsigned long long>(row.Uint("span_id")));
      lanes.insert(event.tid);
      events.push_back(std::move(event));
    } else if (row.type == "bug_report") {
      TraceEvent event;
      event.name = StrFormat("bug %llu %s",
                             static_cast<unsigned long long>(row.Uint("catalog_id")),
                             row.Text("kind").c_str());
      event.phase = 'i';
      event.ts = row.at;
      event.tid = static_cast<int>(row.Uint("board"));
      event.args = StrFormat("{\"detector\":\"%s\"}",
                             JsonEscape(row.Text("detector")).c_str());
      lanes.insert(event.tid);
      events.push_back(std::move(event));
    } else if (row.type == "liveness_reset") {
      TraceEvent event;
      event.name = StrFormat("liveness_reset %s", row.Text("reason").c_str());
      event.phase = 'i';
      event.ts = row.at;
      if (row.worker >= 0) {
        event.tid = row.worker;
        lanes.insert(event.tid);
      } else {
        event.global_scope = true;
      }
      events.push_back(std::move(event));
    }
  }
  // ts ascending; at a shared ts the longer span first, so an enclosing span
  // (e.g. watchdog recovery around its nested reflash) precedes its children —
  // the order trace viewers need to reconstruct the nesting.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts != b.ts) {
                       return a.ts < b.ts;
                     }
                     return a.dur > b.dur;
                   });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (int lane : lanes) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += StrFormat(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,"
        "\"args\":{\"name\":\"board %d\"}}",
        lane, lane);
  }
  for (const TraceEvent& event : events) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendEvent(&out, event);
  }
  out += "]}\n";
  return out;
}

}  // namespace telemetry
}  // namespace eof
