#include "src/telemetry/metrics.h"

#include <algorithm>

namespace eof {
namespace telemetry {

Histogram::Histogram(std::vector<uint64_t> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(uint64_t value) {
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.buckets.reserve(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snapshot.buckets.push_back(buckets_[i].load(std::memory_order_relaxed));
  }
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  return snapshot;
}

const std::vector<uint64_t>& DefaultLatencyBoundsUs() {
  static const std::vector<uint64_t> bounds = {100,     1000,     10000,    100000,
                                               1000000, 10000000, 100000000};
  return bounds;
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

uint64_t MetricsSnapshot::GaugeValue(const std::string& name) const {
  auto it = gauges.find(name);
  return it == gauges.end() ? 0 : it->second;
}

MetricsSnapshot MetricsSnapshot::Diff(const MetricsSnapshot& earlier) const {
  MetricsSnapshot diff = *this;
  for (auto& [name, value] : diff.counters) {
    uint64_t base = earlier.CounterValue(name);
    value = value >= base ? value - base : 0;
  }
  for (auto& [name, histogram] : diff.histograms) {
    auto it = earlier.histograms.find(name);
    if (it == earlier.histograms.end() || it->second.bounds != histogram.bounds) {
      continue;
    }
    const HistogramSnapshot& base = it->second;
    for (size_t i = 0; i < histogram.buckets.size() && i < base.buckets.size(); ++i) {
      uint64_t b = base.buckets[i];
      histogram.buckets[i] = histogram.buckets[i] >= b ? histogram.buckets[i] - b : 0;
    }
    histogram.count = histogram.count >= base.count ? histogram.count - base.count : 0;
    histogram.sum = histogram.sum >= base.sum ? histogram.sum - base.sum : 0;
  }
  return diff;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;
  }
  for (const auto& [name, value] : other.gauges) {
    auto [it, inserted] = gauges.emplace(name, value);
    if (!inserted) {
      it->second = std::max(it->second, value);
    }
  }
  for (const auto& [name, histogram] : other.histograms) {
    auto [it, inserted] = histograms.emplace(name, histogram);
    if (inserted || it->second.bounds != histogram.bounds) {
      continue;
    }
    HistogramSnapshot& mine = it->second;
    for (size_t i = 0; i < mine.buckets.size() && i < histogram.buckets.size(); ++i) {
      mine.buckets[i] += histogram.buckets[i];
    }
    mine.count += histogram.count;
    mine.sum += histogram.sum;
  }
}

Counter* MetricsRegistry::RegisterCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = counters_.emplace(name, nullptr);
  if (inserted) {
    it->second = std::make_unique<Counter>();
  }
  return it->second.get();
}

Gauge* MetricsRegistry::RegisterGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = gauges_.emplace(name, nullptr);
  if (inserted) {
    it->second = std::make_unique<Gauge>();
  }
  return it->second.get();
}

Histogram* MetricsRegistry::RegisterHistogram(const std::string& name,
                                              std::vector<uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = histograms_.emplace(name, nullptr);
  if (inserted) {
    it->second = std::make_unique<Histogram>(std::move(bounds));
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace(name, gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace(name, histogram->Snapshot());
  }
  return snapshot;
}

}  // namespace telemetry
}  // namespace eof
