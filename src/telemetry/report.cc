#include "src/telemetry/report.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string_view>

#include "src/common/strings.h"
#include "src/telemetry/journal.h"

namespace eof {
namespace telemetry {

uint64_t JournalRow::Uint(const std::string& key, uint64_t fallback) const {
  auto it = uints.find(key);
  if (it != uints.end()) {
    return it->second;
  }
  auto real_it = reals.find(key);
  if (real_it != reals.end() && real_it->second >= 0) {
    return static_cast<uint64_t>(real_it->second);
  }
  return fallback;
}

double JournalRow::Real(const std::string& key, double fallback) const {
  auto it = reals.find(key);
  if (it != reals.end()) {
    return it->second;
  }
  auto uint_it = uints.find(key);
  if (uint_it != uints.end()) {
    return static_cast<double>(uint_it->second);
  }
  return fallback;
}

const std::string& JournalRow::Text(const std::string& key) const {
  static const std::string kEmpty;
  auto it = texts.find(key);
  return it == texts.end() ? kEmpty : it->second;
}

bool JournalRow::Has(const std::string& key) const {
  return uints.count(key) > 0 || reals.count(key) > 0 || texts.count(key) > 0;
}

namespace {

// Minimal strict parser for the flat JSON objects Event::ToJsonLine emits: string
// keys, and string / unsigned / real values. Anything nested is a parse error —
// the journal never produces it, so seeing it means the file is not a journal.
class LineParser {
 public:
  explicit LineParser(std::string_view text) : text_(text) {}

  Status Parse(JournalRow* row) {
    SkipSpace();
    if (!Consume('{')) {
      return InvalidArgumentError("expected '{'");
    }
    SkipSpace();
    if (Consume('}')) {
      return FinishRow(row);
    }
    while (true) {
      std::string key;
      RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) {
        return InvalidArgumentError("expected ':' after key '" + key + "'");
      }
      SkipSpace();
      RETURN_IF_ERROR(ParseValue(key, row));
      SkipSpace();
      if (Consume(',')) {
        SkipSpace();
        continue;
      }
      if (Consume('}')) {
        break;
      }
      return InvalidArgumentError("expected ',' or '}' after value of '" + key + "'");
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return InvalidArgumentError("trailing characters after object");
    }
    return FinishRow(row);
  }

 private:
  Status FinishRow(JournalRow* row) {
    auto type_it = row->texts.find("type");
    if (type_it == row->texts.end()) {
      return InvalidArgumentError("row has no \"type\" key");
    }
    row->type = type_it->second;
    row->texts.erase(type_it);
    auto at_it = row->uints.find("t_us");
    if (at_it != row->uints.end()) {
      row->at = at_it->second;
      row->uints.erase(at_it);
    }
    auto worker_it = row->uints.find("worker");
    if (worker_it != row->uints.end()) {
      row->worker = static_cast<int>(worker_it->second);
      row->uints.erase(worker_it);
    }
    return OkStatus();
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) {
      return InvalidArgumentError("expected '\"'");
    }
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return OkStatus();
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return InvalidArgumentError("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return InvalidArgumentError("bad \\u escape digit");
            }
          }
          // The journal only escapes control bytes; encode anything else as UTF-8.
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return InvalidArgumentError(StrFormat("bad escape '\\%c'", esc));
      }
    }
    return InvalidArgumentError("unterminated string");
  }

  Status ParseValue(const std::string& key, JournalRow* row) {
    if (pos_ < text_.size() && text_[pos_] == '"') {
      std::string value;
      RETURN_IF_ERROR(ParseString(&value));
      row->texts[key] = std::move(value);
      return OkStatus();
    }
    size_t start = pos_;
    bool real = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E') {
        real = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      return InvalidArgumentError("expected a string or number value for '" + key +
                                  "' (the journal holds nothing else)");
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    if (real || token[0] == '-') {
      double value = std::strtod(token.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return InvalidArgumentError("malformed number '" + token + "'");
      }
      row->reals[key] = value;
      return OkStatus();
    }
    uint64_t value = std::strtoull(token.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return InvalidArgumentError("malformed number '" + token + "'");
    }
    row->uints[key] = value;
    return OkStatus();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JournalRow> ParseJournalLine(std::string_view line) {
  JournalRow row;
  RETURN_IF_ERROR(LineParser(line).Parse(&row));
  return row;
}

Result<std::vector<JournalRow>> ParseJournal(std::string_view text) {
  std::vector<JournalRow> rows;
  size_t line_number = 0;
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    ++line_number;
    std::string_view line = StripWhitespace(text.substr(begin, end - begin));
    if (!line.empty()) {
      auto row = ParseJournalLine(line);
      if (!row.ok()) {
        return InvalidArgumentError(StrFormat(
            "line %zu: %s", line_number, row.status().message().c_str()));
      }
      rows.push_back(std::move(row).value());
    }
    if (end == text.size()) {
      break;
    }
    begin = end + 1;
  }
  return rows;
}

uint64_t BoardAccounting::OtherUs() const {
  // recovery_us already contains any reflash performed during recovery, so the
  // attributed total counts reflash time only once (standalone reflashes outside a
  // recovery span do not occur in the current executor, but guard anyway).
  uint64_t attributed = exec_us + drain_us + recovery_us + deploy_us;
  uint64_t standalone_reflash = reflash_us > recovery_us ? reflash_us - recovery_us : 0;
  attributed += standalone_reflash;
  return clock > attributed ? clock - attributed : 0;
}

CampaignReport BuildReport(const std::vector<JournalRow>& rows) {
  CampaignReport report;
  bool saw_start = false;
  bool saw_end = false;
  bool saw_fleet_start = false;
  uint64_t snapshot_bugs = 0;
  std::map<int, BoardAccounting> boards;
  std::map<int, uint64_t> dedup_hits;

  for (const JournalRow& row : rows) {
    if (row.type == "campaign_start") {
      saw_start = true;
      // Merged fleet journals hold one campaign_start per process; the
      // orchestrator's (fleet=1) is the campaign envelope, worker rows only
      // describe their own batch and never override it.
      bool fleet_row = row.Uint("fleet") != 0;
      if (fleet_row) {
        report.fleet.present = true;
      }
      if (!saw_fleet_start) {
        saw_fleet_start = fleet_row;
        report.os = row.Text("os");
        report.board = row.Text("board");
        report.workers = row.Uint("workers");
        report.seed = row.Uint("seed");
        report.budget = row.Uint("budget_us");
        report.interval = row.Uint("interval_us");
      }
      if (report.campaign.empty()) {
        report.campaign = row.Text("campaign");
      }
    } else if (row.type == "farm_snapshot") {
      ReportSample sample;
      sample.at = row.at;
      sample.coverage =
          row.Has("campaign_coverage") ? row.Uint("campaign_coverage") : row.Uint("coverage");
      sample.execs =
          row.Has("campaign_execs") ? row.Uint("campaign_execs") : row.Uint("execs");
      sample.execs_per_vsec = row.Real("execs_per_vsec");
      report.series.push_back(sample);
      report.end = row.at;
      report.final_coverage = sample.coverage;
      report.final_execs = sample.execs;
      report.crashes = row.Uint("crashes");
      report.corpus = row.Uint("corpus");
      snapshot_bugs = row.Uint("bugs");
      report.directed_hits = row.Uint("directed_hits");
      report.frontier = row.Uint("frontier");
      report.trim_removed_calls = row.Uint("trim_removed_calls");
      report.trim_kept_calls = row.Uint("trim_kept_calls");
      if (row.Uint("journal_dropped") > report.journal_dropped) {
        report.journal_dropped = row.Uint("journal_dropped");
      }
    } else if (row.type == "board_snapshot") {
      BoardAccounting& board = boards[row.worker];
      board.worker = row.worker;
      board.clock = row.at;
      board.execs = row.Uint("execs");
      board.restores = row.Uint("restores");
      board.snapshot_restores = row.Uint("snapshot_restores");
      board.stalls = row.Uint("stalls");
      board.timeouts = row.Uint("timeouts");
      board.exec_us = row.Uint("exec_us");
      board.drain_us = row.Uint("drain_us");
      board.reflash_us = row.Uint("reflash_us");
      board.recovery_us = row.Uint("recovery_us");
      board.deploy_us = row.Uint("deploy_us");
      board.overlapped_drains = row.Uint("overlapped_drains");
      board.drain_overlap_saved_us = row.Uint("drain_overlap_saved_us");
    } else if (row.type == "bug_report") {
      ReportBug bug;
      bug.catalog_id = static_cast<int>(row.Uint("catalog_id"));
      bug.detector = row.Text("detector");
      bug.kind = row.Text("kind");
      bug.operation = row.Text("operation");
      bug.excerpt = row.Text("excerpt");
      bug.program = row.Text("program");
      bug.at = row.at;
      bug.first_exec = row.Uint("first_exec");
      bug.board = static_cast<int>(row.Uint("board"));
      bug.seed_stream = row.Uint("seed_stream");
      bug.coverage_delta = row.Uint("coverage_delta");
      bug.snapshot_validation = row.Text("snapshot_validation");
      bug.last_restore = row.Text("last_restore");
      bug.dump_reason = row.Text("dump_reason");
      bug.uart_tail = row.Text("uart_tail");
      bug.port_ops = row.Text("port_ops");
      bug.events = row.Text("events");
      // Validation-rejected sightings stay out of the bug table (they would also
      // break the snapshot-vs-journal bug count consistency check below).
      if (bug.snapshot_validation == "rejected") {
        report.rejected_bugs.push_back(std::move(bug));
      } else {
        report.bugs.push_back(std::move(bug));
      }
    } else if (row.type == "bug_dedup") {
      ++dedup_hits[static_cast<int>(row.Uint("catalog_id"))];
    } else if (row.type == "liveness_reset") {
      ++report.resets_by_reason[row.Text("reason")];
      // Pre-snapshot journals have no "restore" field; those were all cold reboots.
      const std::string& mode = row.Text("restore");
      ++report.restores_by_mode[mode.empty() ? "cold" : mode];
    } else if (row.type == "crash_dump") {
      ++report.crash_dumps;
    } else if (row.type == "campaign_end") {
      saw_end = true;
      // Merged journals carry one campaign_end per process; the campaign ends
      // when the last one does.
      if (row.at > report.end) {
        report.end = row.at;
      }
      if (row.Uint("journal_dropped") > report.journal_dropped) {
        report.journal_dropped = row.Uint("journal_dropped");
      }
    } else if (row.type == "lease_grant") {
      report.fleet.present = true;
      ++report.fleet.leases_granted;
    } else if (row.type == "lease_complete") {
      report.fleet.present = true;
      ++report.fleet.leases_completed;
    } else if (row.type == "lease_reclaim") {
      report.fleet.present = true;
      ++report.fleet.leases_reclaimed;
    } else if (row.type == "worker_lost") {
      report.fleet.present = true;
      ++report.fleet.workers_lost;
    } else if (row.type == "heartbeat") {
      report.fleet.present = true;
      ++report.fleet.heartbeats;
    } else if (row.type == "corpus_sync") {
      report.fleet.present = true;
      ++report.fleet.corpus_syncs;
    } else if (row.type == "worker_final") {
      report.fleet.present = true;
      ++report.fleet.worker_finals;
    }
    // "bug", "new_coverage", "span", and future row types carry no report state the
    // rows above do not already cover.
  }

  if (report.fleet.present) {
    // Independent workers can journal the same deduplicated bug (each keeps its
    // own sighting until the next sync folds the orchestrator's table back in).
    // Merge sightings by identity key — earliest virtual time wins, later rows
    // count as duplicates — mirroring the orchestrator's own bug admission.
    auto fold = [](std::vector<ReportBug>* bugs) {
      std::map<std::string, size_t> first_by_key;
      std::vector<ReportBug> kept;
      for (ReportBug& bug : *bugs) {
        std::string key = StrFormat("%d|%s", bug.catalog_id, bug.excerpt.c_str());
        auto it = first_by_key.find(key);
        if (it == first_by_key.end()) {
          first_by_key.emplace(std::move(key), kept.size());
          kept.push_back(std::move(bug));
        } else {
          kept[it->second].duplicates += 1 + bug.duplicates;
        }
      }
      *bugs = std::move(kept);
    };
    fold(&report.bugs);
    fold(&report.rejected_bugs);
  }

  for (auto& [catalog_id, hits] : dedup_hits) {
    bool credited = false;
    for (ReportBug& bug : report.bugs) {
      if (bug.catalog_id == catalog_id) {
        bug.duplicates += hits;
        credited = true;
        break;  // dedup rows only carry the catalog id; credit the first sighting
      }
    }
    if (!credited) {
      // Rejected sightings dedup too — re-triggers of an artifact stay with it.
      for (ReportBug& bug : report.rejected_bugs) {
        if (bug.catalog_id == catalog_id) {
          bug.duplicates += hits;
          break;
        }
      }
    }
  }
  for (auto& [worker, board] : boards) {
    report.boards.push_back(board);
  }
  report.bugs_found = report.bugs.size();

  if (!saw_start) {
    report.warnings.push_back("journal has no campaign_start row");
  }
  if (!saw_end) {
    report.warnings.push_back(
        "journal has no campaign_end row - the campaign was cut short or the file is "
        "truncated; every number below is a lower bound");
  }
  if (report.journal_dropped > 0) {
    report.warnings.push_back(StrFormat(
        "the journal sink dropped %llu rows - counts derived from the journal are "
        "lower bounds",
        static_cast<unsigned long long>(report.journal_dropped)));
  }
  if (saw_end && snapshot_bugs != report.bugs.size()) {
    report.warnings.push_back(StrFormat(
        "final snapshot counted %llu bugs but the journal holds %zu bug_report rows",
        static_cast<unsigned long long>(snapshot_bugs), report.bugs.size()));
  }
  return report;
}

namespace {

double VirtualSeconds(VirtualTime t) {
  return static_cast<double>(t) / kVirtualSecond;
}

double Percent(uint64_t part, uint64_t whole) {
  if (whole == 0) {
    return 0;
  }
  return 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

// Indents every line of `text` by four spaces (for embedding multi-line journal
// columns in the text report).
std::string Indent(const std::string& text) {
  std::string out;
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string::npos) {
      end = text.size();
    }
    out += "    ";
    out.append(text, begin, end - begin);
    out += '\n';
    if (end == text.size()) {
      break;
    }
    begin = end + 1;
  }
  return out;
}

// The last `keep` lines of a newline-joined column.
std::string TailLines(const std::string& text, size_t keep) {
  std::vector<std::string> lines = StrSplit(text, '\n');
  if (lines.size() <= keep) {
    return text;
  }
  std::vector<std::string> tail(lines.end() - static_cast<long>(keep), lines.end());
  return StrJoin(tail, "\n");
}

}  // namespace

std::string CampaignReport::RenderText() const {
  std::string out = "EOF campaign report\n";
  out += StrFormat("  os=%s board=%s workers=%llu seed=%llu\n", os.c_str(), board.c_str(),
                   static_cast<unsigned long long>(workers),
                   static_cast<unsigned long long>(seed));
  out += StrFormat("  budget=%.1fvs interval=%.1fvs end=%.1fvs\n",
                   VirtualSeconds(budget), VirtualSeconds(interval), VirtualSeconds(end));
  out += StrFormat(
      "  coverage=%llu execs=%llu crashes=%llu bugs=%llu rejected=%zu corpus=%llu "
      "crash_dumps=%llu\n",
      static_cast<unsigned long long>(final_coverage),
      static_cast<unsigned long long>(final_execs),
      static_cast<unsigned long long>(crashes),
      static_cast<unsigned long long>(bugs_found),
      rejected_bugs.size(),
      static_cast<unsigned long long>(corpus),
      static_cast<unsigned long long>(crash_dumps));

  if (!warnings.empty()) {
    out += "\n-- warnings --\n";
    for (const std::string& warning : warnings) {
      out += StrFormat("  WARNING: %s\n", warning.c_str());
    }
  }

  out += "\n-- coverage over time --\n";
  out += "      t_vs   coverage      execs   execs/vs\n";
  for (const ReportSample& sample : series) {
    out += StrFormat("%10.1f %10llu %10llu %10.2f\n", VirtualSeconds(sample.at),
                     static_cast<unsigned long long>(sample.coverage),
                     static_cast<unsigned long long>(sample.execs),
                     sample.execs_per_vsec);
  }

  out += "\n-- board time accounting --\n";
  out += "board   clock_vs      execs   snap  exec% drain% flash% recov% deploy% other%\n";
  for (const BoardAccounting& b : boards) {
    out += StrFormat("%5d %10.1f %10llu %6llu %6.1f %6.1f %6.1f %6.1f %7.1f %6.1f\n",
                     b.worker, VirtualSeconds(b.clock),
                     static_cast<unsigned long long>(b.execs),
                     static_cast<unsigned long long>(b.snapshot_restores),
                     Percent(b.exec_us, b.clock), Percent(b.drain_us, b.clock),
                     Percent(b.reflash_us, b.clock), Percent(b.recovery_us, b.clock),
                     Percent(b.deploy_us, b.clock), Percent(b.OtherUs(), b.clock));
  }

  // Attribution section only when the campaign produced any attribution signal:
  // journals from pre-attribution builds (and plain campaigns) render unchanged.
  uint64_t total_overlapped = 0;
  uint64_t total_saved_us = 0;
  for (const BoardAccounting& b : boards) {
    total_overlapped += b.overlapped_drains;
    total_saved_us += b.drain_overlap_saved_us;
  }
  if (directed_hits > 0 || frontier > 0 || trim_removed_calls > 0 ||
      trim_kept_calls > 0 || total_overlapped > 0) {
    out += "\n-- coverage attribution --\n";
    out += StrFormat("  directed_hits=%llu frontier=%llu\n",
                     static_cast<unsigned long long>(directed_hits),
                     static_cast<unsigned long long>(frontier));
    uint64_t trim_total = trim_kept_calls + trim_removed_calls;
    out += StrFormat("  trim: kept=%llu removed=%llu (%.1f%% of attributed calls)\n",
                     static_cast<unsigned long long>(trim_kept_calls),
                     static_cast<unsigned long long>(trim_removed_calls),
                     Percent(trim_removed_calls, trim_total));
    out += StrFormat("  drain overlap: %llu drains rode a continue, saving %.1fvs\n",
                     static_cast<unsigned long long>(total_overlapped),
                     VirtualSeconds(total_saved_us));
  }

  if (fleet.present) {
    out += "\n-- fleet --\n";
    if (!campaign.empty()) {
      out += StrFormat("  campaign=%s\n", campaign.c_str());
    }
    out += StrFormat(
        "  leases: granted=%llu completed=%llu reclaimed=%llu\n",
        static_cast<unsigned long long>(fleet.leases_granted),
        static_cast<unsigned long long>(fleet.leases_completed),
        static_cast<unsigned long long>(fleet.leases_reclaimed));
    out += StrFormat(
        "  workers: lost=%llu finals=%llu heartbeats=%llu corpus_syncs=%llu\n",
        static_cast<unsigned long long>(fleet.workers_lost),
        static_cast<unsigned long long>(fleet.worker_finals),
        static_cast<unsigned long long>(fleet.heartbeats),
        static_cast<unsigned long long>(fleet.corpus_syncs));
  }

  if (!resets_by_reason.empty()) {
    out += "\n-- liveness resets --\n";
    for (const auto& [reason, count] : resets_by_reason) {
      out += StrFormat("  %-22s %llu\n", reason.c_str(),
                       static_cast<unsigned long long>(count));
    }
    out += "  by restore mode:\n";
    for (const auto& [mode, count] : restores_by_mode) {
      out += StrFormat("    %-20s %llu\n", mode.c_str(),
                       static_cast<unsigned long long>(count));
    }
  }

  out += StrFormat("\n-- bugs (%zu deduped) --\n", bugs.size());
  for (const ReportBug& bug : bugs) {
    out += StrFormat(
        "bug #%d [%s/%s] op=%s board=%d first_exec=%llu seed_stream=%llu "
        "cov_delta=%llu t_vs=%.1f dups=%llu validation=%s restore=%s\n",
        bug.catalog_id, bug.detector.c_str(), bug.kind.c_str(),
        bug.operation.empty() ? "?" : bug.operation.c_str(), bug.board,
        static_cast<unsigned long long>(bug.first_exec),
        static_cast<unsigned long long>(bug.seed_stream),
        static_cast<unsigned long long>(bug.coverage_delta), VirtualSeconds(bug.at),
        static_cast<unsigned long long>(bug.duplicates),
        bug.snapshot_validation.empty() ? "not_checked" : bug.snapshot_validation.c_str(),
        bug.last_restore.empty() ? "none" : bug.last_restore.c_str());
    out += "  excerpt:\n";
    out += Indent(TailLines(bug.excerpt, 4));
    out += "  program:\n";
    out += Indent(bug.program);
    out += StrFormat("  dump[%s] uart tail:\n", bug.dump_reason.c_str());
    out += Indent(TailLines(bug.uart_tail, 8));
    out += "  dump port ops (tail):\n";
    out += Indent(TailLines(bug.port_ops, 8));
    out += "  dump events (tail):\n";
    out += Indent(TailLines(bug.events, 8));
  }

  if (!rejected_bugs.empty()) {
    out += StrFormat("\n-- rejected sightings (%zu, failed cold-boot validation) --\n",
                     rejected_bugs.size());
    for (const ReportBug& bug : rejected_bugs) {
      out += StrFormat(
          "sighting #%d [%s/%s] board=%d first_exec=%llu restore=%s dups=%llu\n",
          bug.catalog_id, bug.detector.c_str(), bug.kind.c_str(), bug.board,
          static_cast<unsigned long long>(bug.first_exec),
          bug.last_restore.empty() ? "none" : bug.last_restore.c_str(),
          static_cast<unsigned long long>(bug.duplicates));
      out += "  excerpt:\n";
      out += Indent(TailLines(bug.excerpt, 4));
      out += "  program:\n";
      out += Indent(bug.program);
    }
  }
  return out;
}

namespace {

void AppendJsonUint(std::string* out, const char* key, uint64_t value, bool* first) {
  if (!*first) {
    *out += ',';
  }
  *first = false;
  *out += StrFormat("\"%s\":%llu", key, static_cast<unsigned long long>(value));
}

void AppendJsonText(std::string* out, const char* key, const std::string& value,
                    bool* first) {
  if (!*first) {
    *out += ',';
  }
  *first = false;
  *out += StrFormat("\"%s\":\"%s\"", key, JsonEscape(value).c_str());
}

}  // namespace

std::string CampaignReport::RenderJson() const {
  std::string out = "{";
  bool first = true;
  AppendJsonText(&out, "os", os, &first);
  AppendJsonText(&out, "board", board, &first);
  AppendJsonUint(&out, "workers", workers, &first);
  AppendJsonUint(&out, "seed", seed, &first);
  AppendJsonUint(&out, "budget_us", budget, &first);
  AppendJsonUint(&out, "interval_us", interval, &first);
  AppendJsonUint(&out, "end_us", end, &first);
  AppendJsonUint(&out, "coverage", final_coverage, &first);
  AppendJsonUint(&out, "execs", final_execs, &first);
  AppendJsonUint(&out, "crashes", crashes, &first);
  AppendJsonUint(&out, "bugs_found", bugs_found, &first);
  AppendJsonUint(&out, "bugs_rejected", rejected_bugs.size(), &first);
  AppendJsonUint(&out, "corpus", corpus, &first);
  AppendJsonUint(&out, "journal_dropped", journal_dropped, &first);
  AppendJsonUint(&out, "crash_dumps", crash_dumps, &first);

  out += ",\n\"series\":[";
  for (size_t i = 0; i < series.size(); ++i) {
    const ReportSample& sample = series[i];
    if (i > 0) {
      out += ',';
    }
    out += StrFormat("{\"t_us\":%llu,\"coverage\":%llu,\"execs\":%llu,"
                     "\"execs_per_vsec\":%.4f}",
                     static_cast<unsigned long long>(sample.at),
                     static_cast<unsigned long long>(sample.coverage),
                     static_cast<unsigned long long>(sample.execs),
                     sample.execs_per_vsec);
  }
  out += "]";

  out += ",\n\"boards\":[";
  for (size_t i = 0; i < boards.size(); ++i) {
    const BoardAccounting& b = boards[i];
    if (i > 0) {
      out += ',';
    }
    out += '{';
    bool bf = true;
    AppendJsonUint(&out, "worker", static_cast<uint64_t>(b.worker), &bf);
    AppendJsonUint(&out, "clock_us", b.clock, &bf);
    AppendJsonUint(&out, "execs", b.execs, &bf);
    AppendJsonUint(&out, "restores", b.restores, &bf);
    AppendJsonUint(&out, "snapshot_restores", b.snapshot_restores, &bf);
    AppendJsonUint(&out, "stalls", b.stalls, &bf);
    AppendJsonUint(&out, "timeouts", b.timeouts, &bf);
    AppendJsonUint(&out, "exec_us", b.exec_us, &bf);
    AppendJsonUint(&out, "drain_us", b.drain_us, &bf);
    AppendJsonUint(&out, "reflash_us", b.reflash_us, &bf);
    AppendJsonUint(&out, "recovery_us", b.recovery_us, &bf);
    AppendJsonUint(&out, "deploy_us", b.deploy_us, &bf);
    AppendJsonUint(&out, "other_us", b.OtherUs(), &bf);
    // Overlap keys only when the board actually overlapped drains, so reports from
    // pre-attribution journals stay byte-identical.
    if (b.overlapped_drains > 0) {
      AppendJsonUint(&out, "overlapped_drains", b.overlapped_drains, &bf);
      AppendJsonUint(&out, "drain_overlap_saved_us", b.drain_overlap_saved_us, &bf);
    }
    out += '}';
  }
  out += "]";

  uint64_t total_overlapped = 0;
  uint64_t total_saved_us = 0;
  for (const BoardAccounting& b : boards) {
    total_overlapped += b.overlapped_drains;
    total_saved_us += b.drain_overlap_saved_us;
  }
  if (directed_hits > 0 || frontier > 0 || trim_removed_calls > 0 ||
      trim_kept_calls > 0 || total_overlapped > 0) {
    out += ",\n\"attribution\":{";
    bool af = true;
    AppendJsonUint(&out, "directed_hits", directed_hits, &af);
    AppendJsonUint(&out, "frontier", frontier, &af);
    AppendJsonUint(&out, "trim_kept_calls", trim_kept_calls, &af);
    AppendJsonUint(&out, "trim_removed_calls", trim_removed_calls, &af);
    AppendJsonUint(&out, "overlapped_drains", total_overlapped, &af);
    AppendJsonUint(&out, "drain_overlap_saved_us", total_saved_us, &af);
    out += "}";
  }

  // Fleet object only for fleet journals, so legacy report JSON stays
  // byte-identical.
  if (fleet.present) {
    out += ",\n\"fleet\":{";
    bool ff = true;
    AppendJsonText(&out, "campaign", campaign, &ff);
    AppendJsonUint(&out, "leases_granted", fleet.leases_granted, &ff);
    AppendJsonUint(&out, "leases_completed", fleet.leases_completed, &ff);
    AppendJsonUint(&out, "leases_reclaimed", fleet.leases_reclaimed, &ff);
    AppendJsonUint(&out, "workers_lost", fleet.workers_lost, &ff);
    AppendJsonUint(&out, "worker_finals", fleet.worker_finals, &ff);
    AppendJsonUint(&out, "heartbeats", fleet.heartbeats, &ff);
    AppendJsonUint(&out, "corpus_syncs", fleet.corpus_syncs, &ff);
    out += "}";
  }

  out += ",\n\"resets\":{";
  first = true;
  for (const auto& [reason, count] : resets_by_reason) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += StrFormat("\"%s\":%llu", JsonEscape(reason).c_str(),
                     static_cast<unsigned long long>(count));
  }
  out += "}";

  out += ",\n\"restores_by_mode\":{";
  first = true;
  for (const auto& [mode, count] : restores_by_mode) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += StrFormat("\"%s\":%llu", JsonEscape(mode).c_str(),
                     static_cast<unsigned long long>(count));
  }
  out += "}";

  auto append_bug = [](std::string* dst, const ReportBug& bug) {
    *dst += '{';
    bool bf = true;
    AppendJsonUint(dst, "catalog_id", static_cast<uint64_t>(bug.catalog_id), &bf);
    AppendJsonText(dst, "detector", bug.detector, &bf);
    AppendJsonText(dst, "kind", bug.kind, &bf);
    AppendJsonText(dst, "operation", bug.operation, &bf);
    AppendJsonText(dst, "excerpt", bug.excerpt, &bf);
    AppendJsonText(dst, "program", bug.program, &bf);
    AppendJsonUint(dst, "t_us", bug.at, &bf);
    AppendJsonUint(dst, "first_exec", bug.first_exec, &bf);
    AppendJsonUint(dst, "board", static_cast<uint64_t>(bug.board), &bf);
    AppendJsonUint(dst, "seed_stream", bug.seed_stream, &bf);
    AppendJsonUint(dst, "coverage_delta", bug.coverage_delta, &bf);
    AppendJsonUint(dst, "duplicates", bug.duplicates, &bf);
    AppendJsonText(dst, "snapshot_validation",
                   bug.snapshot_validation.empty() ? "not_checked"
                                                   : bug.snapshot_validation,
                   &bf);
    AppendJsonText(dst, "last_restore",
                   bug.last_restore.empty() ? "none" : bug.last_restore, &bf);
    AppendJsonText(dst, "dump_reason", bug.dump_reason, &bf);
    AppendJsonText(dst, "uart_tail", bug.uart_tail, &bf);
    AppendJsonText(dst, "port_ops", bug.port_ops, &bf);
    AppendJsonText(dst, "events", bug.events, &bf);
    *dst += '}';
  };

  out += ",\n\"bugs\":[";
  for (size_t i = 0; i < bugs.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    append_bug(&out, bugs[i]);
  }
  out += "]";

  out += ",\n\"rejected_bugs\":[";
  for (size_t i = 0; i < rejected_bugs.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    append_bug(&out, rejected_bugs[i]);
  }
  out += "]";

  out += ",\n\"warnings\":[";
  for (size_t i = 0; i < warnings.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += StrFormat("\"%s\"", JsonEscape(warnings[i]).c_str());
  }
  out += "]}\n";
  return out;
}

namespace {

Result<std::vector<JournalRow>> LoadJournalRows(const std::string& path) {
  FILE* file = fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return NotFoundError(StrFormat("cannot open journal '%s'", path.c_str()));
  }
  std::string text;
  char buffer[1 << 16];
  size_t got;
  while ((got = fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, got);
  }
  bool read_error = ferror(file) != 0;
  fclose(file);
  if (read_error) {
    return UnavailableError(StrFormat("error reading journal '%s'", path.c_str()));
  }
  auto rows = ParseJournal(text);
  if (!rows.ok()) {
    return InvalidArgumentError(
        StrFormat("%s: %s", path.c_str(), rows.status().message().c_str()));
  }
  return std::move(rows).value();
}

}  // namespace

Result<CampaignReport> LoadReportFromFile(const std::string& path) {
  ASSIGN_OR_RETURN(std::vector<JournalRow> rows, LoadJournalRows(path));
  return BuildReport(rows);
}

Result<std::vector<JournalRow>> LoadMergedJournalRows(
    const std::vector<std::string>& paths) {
  if (paths.empty()) {
    return InvalidArgumentError("no journal files to merge");
  }
  // Group files into streams: a file opening with a journal_segment header is
  // the next rotated segment of the previous file's stream and concatenates
  // onto it; anything else starts a stream of its own.
  std::vector<std::vector<JournalRow>> streams;
  std::string campaign_id;
  std::string campaign_owner;  // path that established campaign_id
  for (const std::string& path : paths) {
    ASSIGN_OR_RETURN(std::vector<JournalRow> rows, LoadJournalRows(path));
    for (const JournalRow& row : rows) {
      if (row.type != "campaign_start") {
        continue;
      }
      const std::string& id = row.Text("campaign");
      if (id.empty()) {
        continue;
      }
      if (campaign_id.empty()) {
        campaign_id = id;
        campaign_owner = path;
      } else if (id != campaign_id) {
        return InvalidArgumentError(StrFormat(
            "mixed campaign ids: '%s' (%s) vs '%s' (%s) - merge only journals "
            "from one campaign",
            campaign_id.c_str(), campaign_owner.c_str(), id.c_str(),
            path.c_str()));
      }
    }
    bool continuation =
        !rows.empty() && rows.front().type == "journal_segment" && !streams.empty();
    if (continuation) {
      std::vector<JournalRow>& stream = streams.back();
      stream.insert(stream.end(), std::make_move_iterator(rows.begin()),
                    std::make_move_iterator(rows.end()));
    } else {
      streams.push_back(std::move(rows));
    }
  }
  if (streams.size() == 1) {
    // One stream (a single journal, possibly rotated): file order IS the
    // journal order. No sort — rotated segments must reproduce the unrotated
    // report bit-for-bit, and journal rows are not globally time-monotone.
    return std::move(streams.front());
  }
  std::vector<JournalRow> merged;
  for (std::vector<JournalRow>& stream : streams) {
    merged.insert(merged.end(), std::make_move_iterator(stream.begin()),
                  std::make_move_iterator(stream.end()));
  }
  // One virtual timeline: sort by timestamp, stably, so rows that share an
  // instant keep their per-stream order.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const JournalRow& a, const JournalRow& b) {
                     return a.at < b.at;
                   });
  return merged;
}

Result<CampaignReport> LoadMergedReportFromFiles(
    const std::vector<std::string>& paths) {
  ASSIGN_OR_RETURN(std::vector<JournalRow> rows, LoadMergedJournalRows(paths));
  return BuildReport(rows);
}

}  // namespace telemetry
}  // namespace eof
