// MetricsRegistry — the per-board (and campaign-wide) metric store of the telemetry
// subsystem. Writers hold typed handles (Counter/Gauge/Histogram) registered once at
// construction; every handle mutation is a single relaxed std::atomic op, so the
// fuzzing hot path never takes a lock. Readers call Snapshot(), which walks the
// registered instruments under the registry mutex (held only against concurrent
// registration — never against writers) and returns a plain-value MetricsSnapshot.
//
// Snapshots subtract (Diff, for before/after probes) and sum (Merge, for the farm-wide
// view over per-board registries), which is how the campaign runners aggregate link
// and executor counters without per-field summation code.

#ifndef SRC_TELEMETRY_METRICS_H_
#define SRC_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace eof {
namespace telemetry {

// Monotone event count. Add/Value are lock-free; totals across threads are exact
// (fetch_add), only the ordering between distinct counters is relaxed.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-write-wins level (corpus size, session elapsed, local coverage count).
class Gauge {
 public:
  void Set(uint64_t value) { value_.store(value, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

struct HistogramSnapshot {
  std::vector<uint64_t> bounds;   // ascending inclusive upper bounds; +inf is implicit
  std::vector<uint64_t> buckets;  // bounds.size() + 1 entries (last = overflow)
  uint64_t count = 0;
  uint64_t sum = 0;

  double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }
};

// Fixed-bucket histogram: bucket bounds are chosen at registration and never change,
// so Observe is a binary search plus two relaxed atomic adds. A concurrent snapshot
// may see an observation's bucket before its count/sum (or vice versa) — tolerated,
// as telemetry reads are advisory by design.
class Histogram {
 public:
  explicit Histogram(std::vector<uint64_t> bounds);

  void Observe(uint64_t value);
  HistogramSnapshot Snapshot() const;

 private:
  std::vector<uint64_t> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// Virtual-microsecond latency bounds spanning a debug transaction (~100 us) up to a
// full reflash+reboot (~seconds) — the default for trace-span histograms.
const std::vector<uint64_t>& DefaultLatencyBoundsUs();

// Point-in-time, plain-value copy of a registry (or a combination of several).
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, uint64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // Missing names read as zero, so probes can diff across registration boundaries.
  uint64_t CounterValue(const std::string& name) const;
  uint64_t GaugeValue(const std::string& name) const;

  // this - earlier, per counter and histogram bucket (saturating at 0); gauges keep
  // this snapshot's value (levels have no meaningful difference).
  MetricsSnapshot Diff(const MetricsSnapshot& earlier) const;

  // Accumulates `other` into this snapshot: counters and histogram buckets sum,
  // gauges take the max (so farm-wide elapsed is the slowest board, not a sum of
  // clocks). This is the farm-wide aggregation over per-board registries.
  void Merge(const MetricsSnapshot& other);
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registration is idempotent: re-registering a name returns the existing handle
  // (for a histogram, the existing bounds win). Handles are stable for the registry's
  // lifetime and safe to mutate from any thread.
  Counter* RegisterCounter(const std::string& name);
  Gauge* RegisterGauge(const std::string& name);
  Histogram* RegisterHistogram(const std::string& name, std::vector<uint64_t> bounds);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;  // guards the maps, not the instruments
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace telemetry
}  // namespace eof

#endif  // SRC_TELEMETRY_METRICS_H_
