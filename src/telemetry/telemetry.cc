#include "src/telemetry/telemetry.h"

#include "src/common/hash.h"

namespace eof {
namespace telemetry {

void BoardTelemetry::EmitEvent(VirtualTime at, std::string type,
                               std::vector<EventField> fields) {
  if (sink_ == nullptr) {
    return;
  }
  Event event;
  event.at = at;
  event.type = std::move(type);
  event.worker = worker_;
  event.fields = std::move(fields);
  sink_->Emit(event);
}

CampaignTelemetry::CampaignTelemetry(const Options& options) : options_(options) {}

Result<std::unique_ptr<CampaignTelemetry>> CampaignTelemetry::Create(
    const Options& options) {
  auto telemetry = std::unique_ptr<CampaignTelemetry>(new CampaignTelemetry(options));
  if (!options.metrics_out.empty()) {
    ASSIGN_OR_RETURN(telemetry->sink_, FileEventSink::Open(options.metrics_out));
  }
  int workers = std::max(options.workers, 1);
  telemetry->boards_.reserve(static_cast<size_t>(workers));
  for (int worker = 0; worker < workers; ++worker) {
    // Worker 0 keeps the base seed, others an FNV-derived stream — the same lane
    // rule the farm uses for its RNGs, so span ids line up with worker seeds.
    uint64_t seed = worker == 0 ? options.seed
                                : DeriveSeedStream(options.seed,
                                                   static_cast<uint64_t>(worker));
    telemetry->boards_.push_back(
        std::make_unique<BoardTelemetry>(worker, seed, telemetry->sink_.get()));
  }
  return telemetry;
}

void CampaignTelemetry::StartEmitter(std::function<CampaignView()> view) {
  if (sink_ == nullptr || emitter_ != nullptr) {
    return;
  }
  std::vector<const MetricsRegistry*> registries;
  registries.reserve(boards_.size());
  for (const auto& board : boards_) {
    registries.push_back(&board->registry());
  }
  emitter_ = std::make_unique<SnapshotEmitter>(std::move(registries), std::move(view),
                                               sink_.get(), options_.snapshot_interval,
                                               options_.budget);
}

MetricsSnapshot CampaignTelemetry::MergedBoardSnapshot() const {
  MetricsSnapshot merged;
  for (const auto& board : boards_) {
    merged.Merge(board->registry().Snapshot());
  }
  return merged;
}

void CampaignTelemetry::CampaignStart(const std::string& os_name,
                                      const std::string& board_name) {
  if (sink_ == nullptr) {
    return;
  }
  Event event;
  event.at = 0;
  event.type = "campaign_start";
  event.fields.push_back(EventField::Text("os", os_name));
  event.fields.push_back(
      EventField::Text("board", board_name.empty() ? "default" : board_name));
  event.fields.push_back(EventField::Uint("workers", boards_.size()));
  event.fields.push_back(EventField::Uint("seed", options_.seed));
  event.fields.push_back(EventField::Uint("budget_us", options_.budget));
  event.fields.push_back(EventField::Uint("interval_us", options_.snapshot_interval));
  sink_->Emit(event);
}

void CampaignTelemetry::CampaignEnd(VirtualTime elapsed) {
  if (emitter_ != nullptr) {
    emitter_->Finish(elapsed);
  }
  if (sink_ == nullptr) {
    return;
  }
  Event event;
  event.at = elapsed;
  event.type = "campaign_end";
  event.fields.push_back(EventField::Uint("journal_dropped", sink_->dropped()));
  sink_->Emit(event);
  sink_->Flush();
}

}  // namespace telemetry
}  // namespace eof
