#include "src/telemetry/telemetry.h"

#include "src/common/hash.h"

namespace eof {
namespace telemetry {

void BoardTelemetry::EmitEvent(VirtualTime at, std::string type,
                               std::vector<EventField> fields) {
  if (sink_ == nullptr) {
    return;
  }
  Event event;
  event.at = at;
  event.type = std::move(type);
  event.worker = worker_;
  event.fields = std::move(fields);
  sink_->Emit(event);
}

CampaignTelemetry::CampaignTelemetry(const Options& options) : options_(options) {}

Result<std::unique_ptr<CampaignTelemetry>> CampaignTelemetry::Create(
    const Options& options) {
  auto telemetry = std::unique_ptr<CampaignTelemetry>(new CampaignTelemetry(options));
  if (options.shared_sink != nullptr) {
    if (!options.metrics_out.empty()) {
      return InvalidArgumentError(
          "CampaignTelemetry: shared_sink and metrics_out are mutually exclusive");
    }
    telemetry->external_sink_ = options.shared_sink;
  } else if (!options.metrics_out.empty()) {
    ASSIGN_OR_RETURN(telemetry->sink_, FileEventSink::Open(options.metrics_out));
  }
  int workers = std::max(options.workers, 1);
  telemetry->boards_.reserve(static_cast<size_t>(workers));
  for (int worker = 0; worker < workers; ++worker) {
    // Worker 0 keeps the base seed, others an FNV-derived stream — the same lane
    // rule the farm uses for its RNGs, so span ids line up with worker seeds.
    // With fleet labels the label picks the stream (not the local slot), so a
    // shard keeps its identity no matter which worker process runs it.
    int label = static_cast<size_t>(worker) < options.board_labels.size()
                    ? options.board_labels[static_cast<size_t>(worker)]
                    : worker;
    uint64_t seed = label == 0 ? options.seed
                               : DeriveSeedStream(options.seed,
                                                  static_cast<uint64_t>(label));
    telemetry->boards_.push_back(
        std::make_unique<BoardTelemetry>(label, seed, telemetry->sink()));
  }
  return telemetry;
}

void CampaignTelemetry::StartEmitter(std::function<CampaignView()> view) {
  if (sink() == nullptr || emitter_ != nullptr) {
    return;
  }
  std::vector<const MetricsRegistry*> registries;
  registries.reserve(boards_.size());
  for (const auto& board : boards_) {
    registries.push_back(&board->registry());
  }
  emitter_ = std::make_unique<SnapshotEmitter>(
      std::move(registries), std::move(view), sink(), options_.snapshot_interval,
      options_.budget, options_.board_labels, options_.emit_farm_rows);
}

MetricsSnapshot CampaignTelemetry::MergedBoardSnapshot() const {
  MetricsSnapshot merged;
  for (const auto& board : boards_) {
    merged.Merge(board->registry().Snapshot());
  }
  return merged;
}

void CampaignTelemetry::CampaignStart(const std::string& os_name,
                                      const std::string& board_name) {
  if (sink() == nullptr) {
    return;
  }
  Event event;
  event.at = 0;
  event.type = "campaign_start";
  event.fields.push_back(EventField::Text("os", os_name));
  event.fields.push_back(
      EventField::Text("board", board_name.empty() ? "default" : board_name));
  event.fields.push_back(EventField::Uint("workers", boards_.size()));
  event.fields.push_back(EventField::Uint("seed", options_.seed));
  event.fields.push_back(EventField::Uint("budget_us", options_.budget));
  event.fields.push_back(EventField::Uint("interval_us", options_.snapshot_interval));
  // Fleet-only fields last, so legacy journals stay byte-identical.
  if (!options_.campaign_id.empty()) {
    event.fields.push_back(EventField::Text("campaign", options_.campaign_id));
  }
  if (options_.fleet) {
    event.fields.push_back(EventField::Uint("fleet", 1));
  }
  sink()->Emit(event);
}

void CampaignTelemetry::CampaignEnd(VirtualTime elapsed) {
  if (emitter_ != nullptr) {
    emitter_->Finish(elapsed);
  }
  if (sink() == nullptr) {
    return;
  }
  Event event;
  event.at = elapsed;
  event.type = "campaign_end";
  event.fields.push_back(EventField::Uint("journal_dropped", sink()->dropped()));
  sink()->Emit(event);
  sink()->Flush();
}

}  // namespace telemetry
}  // namespace eof
