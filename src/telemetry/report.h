// Campaign report builder: the offline half of the telemetry pipeline. `eof fuzz
// --metrics-out` writes a JSONL journal of virtual-time-stamped events; this module
// parses that journal back and folds it into a CampaignReport — coverage-over-time
// and throughput series, per-board time accounting, liveness-reset histogram, and
// the deduplicated bug table with full provenance (first-seen exec, board, seed
// stream, reproducer program, flight-recorder dump). The `eof report` subcommand
// renders it as text or machine-readable JSON.
//
// The parser is deliberately strict: a malformed line fails the whole load with its
// line number (CI runs `eof report` over bench artifacts and must fail loudly on a
// corrupt journal), while *missing* rows — a journal cut off before campaign_end, a
// sink that dropped rows — degrade to warnings carried in the report itself.

#ifndef SRC_TELEMETRY_REPORT_H_
#define SRC_TELEMETRY_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/vclock.h"

namespace eof {
namespace telemetry {

// One parsed journal row: the three envelope fields plus every other key in flat
// typed maps. Journal values are only ever unsigned integers, reals, or strings
// (Event::ToJsonLine emits nothing else).
struct JournalRow {
  std::string type;
  VirtualTime at = 0;
  int worker = -1;
  std::map<std::string, uint64_t> uints;
  std::map<std::string, double> reals;
  std::map<std::string, std::string> texts;

  // Missing keys read as zero / empty; a real also satisfies Uint (truncated) so
  // consumers need not care which way a count was rendered.
  uint64_t Uint(const std::string& key, uint64_t fallback = 0) const;
  double Real(const std::string& key, double fallback = 0) const;
  const std::string& Text(const std::string& key) const;
  bool Has(const std::string& key) const;
};

// Parses one JSONL line (one flat JSON object). Fails on malformed JSON, nested
// values, or a missing "type" key.
Result<JournalRow> ParseJournalLine(std::string_view line);

// Parses a whole journal; empty lines are skipped, the first malformed line fails
// the load with its 1-based line number.
Result<std::vector<JournalRow>> ParseJournal(std::string_view text);

// One point of the campaign frontier series (from farm_snapshot rows).
struct ReportSample {
  VirtualTime at = 0;
  uint64_t coverage = 0;
  uint64_t execs = 0;
  double execs_per_vsec = 0;
};

// Where one board's virtual time went: the final board_snapshot row's counters and
// span sums. Percentages are against `clock` (the board's last reported time).
struct BoardAccounting {
  int worker = 0;
  VirtualTime clock = 0;
  uint64_t execs = 0;
  uint64_t restores = 0;
  uint64_t snapshot_restores = 0;  // restores served by the warm snapshot path
  uint64_t stalls = 0;
  uint64_t timeouts = 0;
  uint64_t exec_us = 0;      // running test cases (exec_continue spans)
  uint64_t drain_us = 0;     // coverage-ring drains
  uint64_t reflash_us = 0;   // flash programming
  uint64_t recovery_us = 0;  // watchdog recovery (includes nested reflash time)
  uint64_t deploy_us = 0;    // one-off initial deploy
  // Double-buffered drain accounting: how many drains rode on a continue's round
  // trip, and the virtual time that overlap saved versus a stop-and-drain.
  uint64_t overlapped_drains = 0;
  uint64_t drain_overlap_saved_us = 0;

  // Unattributed remainder (agent wait, status reads, resets outside recovery).
  uint64_t OtherUs() const;
};

// One deduplicated bug with its Table-2 attribution and forensics (bug_report rows).
struct ReportBug {
  int catalog_id = 0;
  std::string detector;
  std::string kind;
  std::string operation;  // Table 2 "Operations" column ("" for uncataloged bugs)
  std::string excerpt;
  std::string program;    // serialized reproducer
  VirtualTime at = 0;
  uint64_t first_exec = 0;
  int board = 0;
  uint64_t seed_stream = 0;
  uint64_t coverage_delta = 0;
  uint64_t duplicates = 0;  // later sightings folded by dedup
  // Cold-boot provenance: the validation verdict ("confirmed" / "rejected" /
  // "not_checked" — older journals read as "") and the restore mode that produced
  // the board state the bug fired on ("none" / "cold" / "snapshot").
  std::string snapshot_validation;
  std::string last_restore;
  std::string dump_reason;
  std::string uart_tail;  // newline-joined flight-recorder rings
  std::string port_ops;
  std::string events;
};

// Fleet orchestration counters (lease_grant / heartbeat / worker_lost /
// corpus_sync ... rows written by `eof serve`). `present` flips when any fleet
// row (or a fleet=1 campaign_start) is seen; legacy journals render without a
// fleet section so existing goldens stay byte-identical.
struct FleetSummary {
  bool present = false;
  uint64_t leases_granted = 0;
  uint64_t leases_completed = 0;
  uint64_t leases_reclaimed = 0;
  uint64_t workers_lost = 0;
  uint64_t heartbeats = 0;
  uint64_t corpus_syncs = 0;
  uint64_t worker_finals = 0;
};

struct CampaignReport {
  // campaign_start envelope.
  std::string os;
  std::string board;
  uint64_t workers = 0;
  uint64_t seed = 0;
  VirtualTime budget = 0;
  VirtualTime interval = 0;

  // Final campaign truths (last farm_snapshot / campaign_end).
  VirtualTime end = 0;
  uint64_t final_coverage = 0;
  uint64_t final_execs = 0;
  uint64_t crashes = 0;
  uint64_t bugs_found = 0;
  uint64_t corpus = 0;
  uint64_t journal_dropped = 0;
  uint64_t crash_dumps = 0;  // crash_dump rows journaled (dumps >= deduped bugs)

  // Per-call attribution stats (last farm_snapshot row; all zero for campaigns
  // run without --directed/--trim or for pre-attribution journals).
  uint64_t directed_hits = 0;       // fresh edges that were frontier targets
  uint64_t frontier = 0;            // final frontier-table size
  uint64_t trim_removed_calls = 0;  // calls dropped by trim-on-add
  uint64_t trim_kept_calls = 0;     // calls kept by trim-on-add

  std::vector<ReportSample> series;
  std::vector<BoardAccounting> boards;
  std::vector<ReportBug> bugs;
  // Validation-rejected sightings (bug_report rows with snapshot_validation ==
  // "rejected"): journaled for forensics but never part of the bug table.
  std::vector<ReportBug> rejected_bugs;
  std::map<std::string, uint64_t> resets_by_reason;  // liveness_reset rows
  // liveness_reset rows split by which path restored the board ("cold" /
  // "snapshot"; rows from pre-snapshot journals land under "cold").
  std::map<std::string, uint64_t> restores_by_mode;
  std::vector<std::string> warnings;

  // Campaign id (campaign_start "campaign" text; "" for legacy journals).
  std::string campaign;
  FleetSummary fleet;

  // Human-readable report (the default `eof report` output).
  std::string RenderText() const;
  // One machine-readable JSON object, newline-terminated.
  std::string RenderJson() const;
};

// Folds parsed rows into a report. Never fails: structural gaps become warnings.
CampaignReport BuildReport(const std::vector<JournalRow>& rows);

// Reads, parses, and folds a journal file.
Result<CampaignReport> LoadReportFromFile(const std::string& path);

// Loads several journal files into one row list, honoring rotation: a file
// whose first row is a `journal_segment` header (written by
// RotatingFileEventSink) continues the previous file's stream, so a rotated
// segment directory concatenates back into exactly the stream one unrotated
// file would hold. With one resulting stream the rows are returned in file
// order, unsorted — byte-for-byte what a single file yields. With several
// streams (orchestrator + per-worker journals) the rows are pooled in path
// order and stable-sorted by virtual timestamp. Campaign-id consistency is
// enforced across all campaign_start rows; parse errors carry the path.
Result<std::vector<JournalRow>> LoadMergedJournalRows(
    const std::vector<std::string>& paths);

// Merges several per-process journals (an orchestrator journal plus one per
// fleet worker) into one report. Rows from all files are pooled and
// stable-sorted by virtual timestamp (file order breaks ties) before folding,
// so the merged series reads like one campaign. Every file must belong to the
// same campaign: journals whose campaign_start rows carry different non-empty
// "campaign" ids fail the load. Parse errors are prefixed with the offending
// path. With a single path this is exactly LoadReportFromFile.
Result<CampaignReport> LoadMergedReportFromFiles(
    const std::vector<std::string>& paths);

}  // namespace telemetry
}  // namespace eof

#endif  // SRC_TELEMETRY_REPORT_H_
