#include "src/telemetry/prometheus.h"

#include "src/common/strings.h"

namespace eof {
namespace telemetry {

std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 4);
  if (name.compare(0, 4, "eof_") != 0) {
    out = "eof_";
  }
  for (char c : name) {
    bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += valid ? c : '_';
  }
  return out;
}

std::string PrometheusEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string PrometheusLabelSet(const PrometheusLabels& labels) {
  if (labels.empty()) {
    return "";
  }
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += StrFormat("%s=\"%s\"", labels[i].first.c_str(),
                     PrometheusEscape(labels[i].second).c_str());
  }
  out += '}';
  return out;
}

void AppendPrometheusType(std::string* out, const std::string& name,
                          const char* type) {
  *out += StrFormat("# TYPE %s %s\n", name.c_str(), type);
}

void AppendPrometheusSample(std::string* out, const std::string& name,
                            const PrometheusLabels& labels, uint64_t value) {
  *out += StrFormat("%s%s %llu\n", name.c_str(),
                    PrometheusLabelSet(labels).c_str(),
                    static_cast<unsigned long long>(value));
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot,
                             const PrometheusLabels& base_labels) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    std::string metric = PrometheusName(name) + "_total";
    AppendPrometheusType(&out, metric, "counter");
    AppendPrometheusSample(&out, metric, base_labels, value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::string metric = PrometheusName(name);
    AppendPrometheusType(&out, metric, "gauge");
    AppendPrometheusSample(&out, metric, base_labels, value);
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    std::string metric = PrometheusName(name);
    AppendPrometheusType(&out, metric, "histogram");
    // Cumulative buckets: the snapshot keeps per-bucket counts with a final
    // overflow bucket, the exposition wants running totals ending at +Inf.
    uint64_t cumulative = 0;
    for (size_t i = 0; i < histogram.bounds.size(); ++i) {
      cumulative += i < histogram.buckets.size() ? histogram.buckets[i] : 0;
      PrometheusLabels labels = base_labels;
      labels.emplace_back("le",
                          StrFormat("%llu", static_cast<unsigned long long>(
                                                histogram.bounds[i])));
      AppendPrometheusSample(&out, metric + "_bucket", labels, cumulative);
    }
    PrometheusLabels inf_labels = base_labels;
    inf_labels.emplace_back("le", "+Inf");
    AppendPrometheusSample(&out, metric + "_bucket", inf_labels,
                           histogram.count);
    AppendPrometheusSample(&out, metric + "_sum", base_labels, histogram.sum);
    AppendPrometheusSample(&out, metric + "_count", base_labels,
                           histogram.count);
  }
  return out;
}

}  // namespace telemetry
}  // namespace eof
