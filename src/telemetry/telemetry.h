// The telemetry wiring the campaign runners hand to the layers they own:
//
//   BoardTelemetry    — one per board session: the session's MetricsRegistry, its
//                       Tracer, and a (shared, possibly null) journal sink. DebugPort,
//                       Deployment, and TargetExecutor all register their instruments
//                       here, so one registry describes one board end to end.
//   CampaignTelemetry — one per campaign: owns the per-board BoardTelemetry objects,
//                       the campaign-wide registry the scheduler instruments, the
//                       JSONL file sink behind --metrics-out, and the SnapshotEmitter.
//
// Counters are always live (they cost one relaxed atomic op and never touch the
// virtual clock or any RNG, so fuzzing results are bit-identical with telemetry on or
// off); the journal and periodic snapshots only exist when a metrics path was given.

#ifndef SRC_TELEMETRY_TELEMETRY_H_
#define SRC_TELEMETRY_TELEMETRY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/vclock.h"
#include "src/telemetry/journal.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/snapshot.h"
#include "src/telemetry/trace.h"

namespace eof {
namespace telemetry {

class BoardTelemetry {
 public:
  // `sink` may be null (metrics only, no journal) and must outlive this object.
  BoardTelemetry(int worker, uint64_t session_seed, EventSink* sink)
      : worker_(worker), sink_(sink), tracer_(&registry_, session_seed, worker, sink) {}

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }
  Tracer& tracer() { return tracer_; }
  EventSink* sink() const { return sink_; }
  int worker() const { return worker_; }

  // Journals one event stamped with this board's worker index; no-op without a sink.
  void EmitEvent(VirtualTime at, std::string type, std::vector<EventField> fields);

 private:
  int worker_;
  MetricsRegistry registry_;
  EventSink* sink_;
  Tracer tracer_;
};

class CampaignTelemetry {
 public:
  struct Options {
    std::string metrics_out;  // "" = no journal / no periodic snapshots
    VirtualDuration snapshot_interval = 30 * kVirtualSecond;
    VirtualDuration budget = 0;
    uint64_t seed = 1;
    int workers = 1;
    // Fleet plumbing; the defaults keep in-process journals byte-identical.
    std::string campaign_id;           // campaign_start "campaign" text when set
    std::vector<int> board_labels;     // global shard label per local board slot
                                       // (board seeds derive from the label, so a
                                       // shard keeps its stream on any worker)
    EventSink* shared_sink = nullptr;  // externally owned sink — a fleet worker's
                                       // journal spans lease batches; metrics_out
                                       // must be empty when set
    bool emit_farm_rows = true;        // fleet workers suppress farm_snapshot rows
    bool fleet = false;                // marks `eof serve` campaign_start rows
  };

  // Fails only when `metrics_out` is set but cannot be opened.
  static Result<std::unique_ptr<CampaignTelemetry>> Create(const Options& options);

  BoardTelemetry* board(int worker) { return boards_[static_cast<size_t>(worker)].get(); }
  int workers() const { return static_cast<int>(boards_.size()); }

  // The campaign-scope registry (scheduler counters) and journal sink; sink is null
  // when no metrics path was given.
  MetricsRegistry& campaign_registry() { return campaign_registry_; }
  EventSink* sink() { return external_sink_ != nullptr ? external_sink_ : sink_.get(); }

  // Arms the periodic emitter; call once, after the scheduler exists. No-op without
  // a sink.
  void StartEmitter(std::function<CampaignView()> view);
  SnapshotEmitter* emitter() { return emitter_.get(); }

  // All per-board registries summed into one farm-wide snapshot (counters and
  // histograms sum; gauges take the max).
  MetricsSnapshot MergedBoardSnapshot() const;

  // Campaign lifecycle bookends in the journal.
  void CampaignStart(const std::string& os_name, const std::string& board_name);
  void CampaignEnd(VirtualTime elapsed);

  // Journal rows the bounded sink buffer has discarded so far (0 without a sink).
  // Campaign runners surface this in CampaignResult and warn at campaign end.
  uint64_t journal_dropped() const {
    if (external_sink_ != nullptr) {
      return external_sink_->dropped();
    }
    return sink_ == nullptr ? 0 : sink_->dropped();
  }

 private:
  explicit CampaignTelemetry(const Options& options);

  Options options_;
  std::unique_ptr<FileEventSink> sink_;
  EventSink* external_sink_ = nullptr;  // not owned (Options::shared_sink)
  MetricsRegistry campaign_registry_;
  std::vector<std::unique_ptr<BoardTelemetry>> boards_;
  std::unique_ptr<SnapshotEmitter> emitter_;
};

}  // namespace telemetry
}  // namespace eof

#endif  // SRC_TELEMETRY_TELEMETRY_H_
