// Campaign event journal: a JSONL stream of discrete campaign-lifecycle events —
// new coverage, bug dedup hits, liveness resets, delta-reflash savings, trace spans,
// periodic metric snapshots. Events are stamped with VIRTUAL time only (the same
// clock the boards burn), so a journal is bit-reproducible across hosts and runs.
//
// Sinks buffer with a hard bound and an explicit drop counter: when a sink cannot
// take an event (memory cap reached, file write failed) the event is dropped and
// counted — never silently lost, never an unbounded queue.

#ifndef SRC_TELEMETRY_JOURNAL_H_
#define SRC_TELEMETRY_JOURNAL_H_

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/common/vclock.h"

namespace eof {
namespace telemetry {

// One typed key/value of an event: an unsigned integer, a real (for rates), or a
// string. Kept as a tagged struct rather than std::variant so rendering stays a
// straight-line switch.
struct EventField {
  enum class Kind : uint8_t { kUint, kReal, kText };

  std::string key;
  Kind kind = Kind::kUint;
  uint64_t uint_value = 0;
  double real_value = 0;
  std::string text_value;

  static EventField Uint(std::string key, uint64_t value);
  static EventField Real(std::string key, double value);
  static EventField Text(std::string key, std::string value);
};

struct Event {
  VirtualTime at = 0;  // virtual microseconds; the only timestamp an event carries
  std::string type;    // "new_coverage", "bug", "liveness_reset", "board_snapshot", ...
  int worker = -1;     // board index; -1 = campaign scope
  std::vector<EventField> fields;

  // One JSON object, no trailing newline:
  //   {"type":"bug","t_us":12000,"worker":0,"catalog_id":7,...}
  std::string ToJsonLine() const;
};

// Escapes `text` for embedding inside a JSON string literal (quotes, backslashes,
// control characters; crash excerpts routinely contain newlines).
std::string JsonEscape(std::string_view text);

// Where journal events go. Implementations must be thread-safe: the farm emits from
// every worker thread plus the scheduler's campaign lock.
class EventSink {
 public:
  virtual ~EventSink() = default;

  // Returns false when the event was dropped (also counted in dropped()).
  virtual bool Emit(const Event& event) = 0;
  virtual void Flush() {}
  virtual uint64_t dropped() const = 0;
};

// Keeps up to `capacity` events in memory; the overflow is dropped and counted.
// The journal of choice for tests and for in-process inspection.
class MemoryEventSink : public EventSink {
 public:
  explicit MemoryEventSink(size_t capacity = 4096) : capacity_(capacity) {}

  bool Emit(const Event& event) override;
  uint64_t dropped() const override { return dropped_.load(std::memory_order_relaxed); }

  std::vector<Event> Events() const;  // copy, so callers need no lock discipline

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::vector<Event> events_;
  std::atomic<uint64_t> dropped_{0};
};

// Appends JSONL lines to a file, buffering up to `buffer_lines` rendered lines
// between writes so the hot path does not syscall per event. Buffered lines are
// flushed on overflow, Flush(), and destruction; a failed write drops the buffered
// lines and counts every one of them.
class FileEventSink : public EventSink {
 public:
  static Result<std::unique_ptr<FileEventSink>> Open(const std::string& path,
                                                     size_t buffer_lines = 256);
  ~FileEventSink() override;

  bool Emit(const Event& event) override;
  void Flush() override;
  uint64_t dropped() const override { return dropped_.load(std::memory_order_relaxed); }

 private:
  FileEventSink(FILE* file, size_t buffer_lines)
      : file_(file), buffer_lines_(buffer_lines) {}
  void FlushLocked();

  std::mutex mu_;
  FILE* file_;
  size_t buffer_lines_;
  std::vector<std::string> buffer_;
  std::atomic<uint64_t> dropped_{0};
};

// Size-rotated JSONL journal: writes numbered segments next to `base_path`
// (`orch.jsonl` -> `orch.000.jsonl`, `orch.001.jsonl`, ...) of at most
// `rotate_bytes` each (a single oversized line still lands in one segment).
// Closing a segment appends a `journal_rotate` manifest row (segment index,
// byte/row counts, next segment's filename); every continuation segment opens
// with a `journal_segment` header row, which is how the report loader knows to
// concatenate a segment directory back into one stream. Both marker rows carry
// the last event's virtual stamp, so a rotated journal stays bit-reproducible.
// Writes are write-through (no line buffering): rotation decisions need exact
// byte accounting, and the rotating sink's only current producer — the fleet
// orchestrator — journals unbuffered anyway.
class RotatingFileEventSink : public EventSink {
 public:
  static Result<std::unique_ptr<RotatingFileEventSink>> Open(
      const std::string& base_path, uint64_t rotate_bytes,
      size_t buffer_lines = 1);
  ~RotatingFileEventSink() override;

  bool Emit(const Event& event) override;
  void Flush() override;
  uint64_t dropped() const override { return dropped_.load(std::memory_order_relaxed); }

  // Segment paths written so far, in order. For tests and manifest listings.
  std::vector<std::string> SegmentPaths() const;

 private:
  RotatingFileEventSink(std::string stem, std::string suffix, uint64_t rotate_bytes);

  static std::string SegmentName(const std::string& stem, const std::string& suffix,
                                 size_t index);
  bool WriteLineLocked(const std::string& line);
  bool RotateLocked();

  mutable std::mutex mu_;
  std::string stem_;    // base path minus the ".jsonl" suffix
  std::string suffix_;  // ".jsonl" (or empty when the base path has none)
  uint64_t rotate_bytes_;
  FILE* file_ = nullptr;
  size_t segment_ = 0;
  uint64_t segment_bytes_ = 0;
  uint64_t segment_rows_ = 0;
  VirtualTime last_at_ = 0;
  std::vector<std::string> segments_;
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace telemetry
}  // namespace eof

#endif  // SRC_TELEMETRY_JOURNAL_H_
