#include "src/telemetry/journal.h"

#include "src/common/strings.h"

namespace eof {
namespace telemetry {

EventField EventField::Uint(std::string key, uint64_t value) {
  EventField field;
  field.key = std::move(key);
  field.kind = Kind::kUint;
  field.uint_value = value;
  return field;
}

EventField EventField::Real(std::string key, double value) {
  EventField field;
  field.key = std::move(key);
  field.kind = Kind::kReal;
  field.real_value = value;
  return field;
}

EventField EventField::Text(std::string key, std::string value) {
  EventField field;
  field.key = std::move(key);
  field.kind = Kind::kText;
  field.text_value = std::move(value);
  return field;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<uint8_t>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<int>(static_cast<uint8_t>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Event::ToJsonLine() const {
  std::string line = StrFormat("{\"type\":\"%s\",\"t_us\":%llu", JsonEscape(type).c_str(),
                               static_cast<unsigned long long>(at));
  if (worker >= 0) {
    line += StrFormat(",\"worker\":%d", worker);
  }
  for (const EventField& field : fields) {
    line += StrFormat(",\"%s\":", JsonEscape(field.key).c_str());
    switch (field.kind) {
      case EventField::Kind::kUint:
        line += StrFormat("%llu", static_cast<unsigned long long>(field.uint_value));
        break;
      case EventField::Kind::kReal:
        line += StrFormat("%.4f", field.real_value);
        break;
      case EventField::Kind::kText:
        line += StrFormat("\"%s\"", JsonEscape(field.text_value).c_str());
        break;
    }
  }
  line += "}";
  return line;
}

bool MemoryEventSink::Emit(const Event& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  events_.push_back(event);
  return true;
}

std::vector<Event> MemoryEventSink::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

Result<std::unique_ptr<FileEventSink>> FileEventSink::Open(const std::string& path,
                                                           size_t buffer_lines) {
  FILE* file = fopen(path.c_str(), "w");
  if (file == nullptr) {
    return UnavailableError(StrFormat("cannot open metrics journal '%s'", path.c_str()));
  }
  return std::unique_ptr<FileEventSink>(
      new FileEventSink(file, std::max<size_t>(buffer_lines, 1)));
}

FileEventSink::~FileEventSink() {
  Flush();
  fclose(file_);
}

bool FileEventSink::Emit(const Event& event) {
  std::lock_guard<std::mutex> lock(mu_);
  buffer_.push_back(event.ToJsonLine());
  if (buffer_.size() >= buffer_lines_) {
    FlushLocked();
  }
  return true;
}

void FileEventSink::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  FlushLocked();
  fflush(file_);
}

void FileEventSink::FlushLocked() {
  for (const std::string& line : buffer_) {
    if (fprintf(file_, "%s\n", line.c_str()) < 0) {
      // Count this line and every remaining one: a full disk drops visibly.
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  buffer_.clear();
}

RotatingFileEventSink::RotatingFileEventSink(std::string stem, std::string suffix,
                                             uint64_t rotate_bytes)
    : stem_(std::move(stem)), suffix_(std::move(suffix)), rotate_bytes_(rotate_bytes) {}

std::string RotatingFileEventSink::SegmentName(const std::string& stem,
                                               const std::string& suffix,
                                               size_t index) {
  // Zero-padded so a lexicographic directory sort is segment order.
  return StrFormat("%s.%03zu%s", stem.c_str(), index, suffix.c_str());
}

Result<std::unique_ptr<RotatingFileEventSink>> RotatingFileEventSink::Open(
    const std::string& base_path, uint64_t rotate_bytes, size_t buffer_lines) {
  (void)buffer_lines;  // write-through; see the class comment
  if (rotate_bytes == 0) {
    return InvalidArgumentError("RotatingFileEventSink: rotate_bytes must be positive");
  }
  std::string stem = base_path;
  std::string suffix;
  constexpr const char kJsonl[] = ".jsonl";
  constexpr size_t kJsonlLen = sizeof(kJsonl) - 1;
  if (stem.size() > kJsonlLen &&
      stem.compare(stem.size() - kJsonlLen, kJsonlLen, kJsonl) == 0) {
    stem.erase(stem.size() - kJsonlLen);
    suffix = kJsonl;
  }
  auto sink = std::unique_ptr<RotatingFileEventSink>(
      new RotatingFileEventSink(std::move(stem), std::move(suffix), rotate_bytes));
  std::string first = SegmentName(sink->stem_, sink->suffix_, 0);
  sink->file_ = fopen(first.c_str(), "w");
  if (sink->file_ == nullptr) {
    return UnavailableError(
        StrFormat("cannot open metrics journal segment '%s'", first.c_str()));
  }
  sink->segments_.push_back(std::move(first));
  return sink;
}

RotatingFileEventSink::~RotatingFileEventSink() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    fclose(file_);
  }
}

bool RotatingFileEventSink::WriteLineLocked(const std::string& line) {
  if (fprintf(file_, "%s\n", line.c_str()) < 0) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  segment_bytes_ += line.size() + 1;
  ++segment_rows_;
  return true;
}

bool RotatingFileEventSink::RotateLocked() {
  std::string next = SegmentName(stem_, suffix_, segment_ + 1);
  FILE* next_file = fopen(next.c_str(), "w");
  if (next_file == nullptr) {
    return false;  // keep writing the current segment; nothing is lost
  }
  // Close the old segment with its manifest row, then open the new one with a
  // header row. Both are stamped at the last event's virtual time so rotation
  // never perturbs the journal's (virtual-time-only) determinism.
  Event rotate;
  rotate.at = last_at_;
  rotate.type = "journal_rotate";
  rotate.fields = {EventField::Uint("segment", segment_),
                   EventField::Uint("bytes", segment_bytes_),
                   EventField::Uint("rows", segment_rows_),
                   EventField::Text("next", next)};
  WriteLineLocked(rotate.ToJsonLine());
  fclose(file_);
  file_ = next_file;
  ++segment_;
  segment_bytes_ = 0;
  segment_rows_ = 0;
  segments_.push_back(next);
  Event header;
  header.at = last_at_;
  header.type = "journal_segment";
  header.fields = {EventField::Uint("segment", segment_),
                   EventField::Text("base", stem_ + suffix_)};
  WriteLineLocked(header.ToJsonLine());
  return true;
}

bool RotatingFileEventSink::Emit(const Event& event) {
  std::lock_guard<std::mutex> lock(mu_);
  last_at_ = event.at;
  std::string line = event.ToJsonLine();
  // Rotate before the write that would push the segment past the cap, so every
  // segment (manifest row included) stays under rotate_bytes — except when one
  // line alone exceeds it. The cap check reserves room for the manifest row
  // that will close this segment, sized against the exact counters it would
  // carry if this line were the segment's last.
  if (segment_rows_ > 0) {
    Event rotate;
    rotate.at = event.at;
    rotate.type = "journal_rotate";
    rotate.fields = {
        EventField::Uint("segment", segment_),
        EventField::Uint("bytes", segment_bytes_ + line.size() + 1),
        EventField::Uint("rows", segment_rows_ + 1),
        EventField::Text("next", SegmentName(stem_, suffix_, segment_ + 1))};
    uint64_t close_cost = rotate.ToJsonLine().size() + 1;
    if (segment_bytes_ + line.size() + 1 + close_cost > rotate_bytes_) {
      RotateLocked();
    }
  }
  return WriteLineLocked(line);
}

void RotatingFileEventSink::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  fflush(file_);
}

std::vector<std::string> RotatingFileEventSink::SegmentPaths() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_;
}

}  // namespace telemetry
}  // namespace eof
