#include "src/telemetry/journal.h"

#include "src/common/strings.h"

namespace eof {
namespace telemetry {

EventField EventField::Uint(std::string key, uint64_t value) {
  EventField field;
  field.key = std::move(key);
  field.kind = Kind::kUint;
  field.uint_value = value;
  return field;
}

EventField EventField::Real(std::string key, double value) {
  EventField field;
  field.key = std::move(key);
  field.kind = Kind::kReal;
  field.real_value = value;
  return field;
}

EventField EventField::Text(std::string key, std::string value) {
  EventField field;
  field.key = std::move(key);
  field.kind = Kind::kText;
  field.text_value = std::move(value);
  return field;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<uint8_t>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<int>(static_cast<uint8_t>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Event::ToJsonLine() const {
  std::string line = StrFormat("{\"type\":\"%s\",\"t_us\":%llu", JsonEscape(type).c_str(),
                               static_cast<unsigned long long>(at));
  if (worker >= 0) {
    line += StrFormat(",\"worker\":%d", worker);
  }
  for (const EventField& field : fields) {
    line += StrFormat(",\"%s\":", JsonEscape(field.key).c_str());
    switch (field.kind) {
      case EventField::Kind::kUint:
        line += StrFormat("%llu", static_cast<unsigned long long>(field.uint_value));
        break;
      case EventField::Kind::kReal:
        line += StrFormat("%.4f", field.real_value);
        break;
      case EventField::Kind::kText:
        line += StrFormat("\"%s\"", JsonEscape(field.text_value).c_str());
        break;
    }
  }
  line += "}";
  return line;
}

bool MemoryEventSink::Emit(const Event& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  events_.push_back(event);
  return true;
}

std::vector<Event> MemoryEventSink::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

Result<std::unique_ptr<FileEventSink>> FileEventSink::Open(const std::string& path,
                                                           size_t buffer_lines) {
  FILE* file = fopen(path.c_str(), "w");
  if (file == nullptr) {
    return UnavailableError(StrFormat("cannot open metrics journal '%s'", path.c_str()));
  }
  return std::unique_ptr<FileEventSink>(
      new FileEventSink(file, std::max<size_t>(buffer_lines, 1)));
}

FileEventSink::~FileEventSink() {
  Flush();
  fclose(file_);
}

bool FileEventSink::Emit(const Event& event) {
  std::lock_guard<std::mutex> lock(mu_);
  buffer_.push_back(event.ToJsonLine());
  if (buffer_.size() >= buffer_lines_) {
    FlushLocked();
  }
  return true;
}

void FileEventSink::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  FlushLocked();
  fflush(file_);
}

void FileEventSink::FlushLocked() {
  for (const std::string& line : buffer_) {
    if (fprintf(file_, "%s\n", line.c_str()) < 0) {
      // Count this line and every remaining one: a full disk drops visibly.
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  buffer_.clear();
}

}  // namespace telemetry
}  // namespace eof
