// Trace spans for the executor phases (deploy, exec-continue, coverage drain,
// reflash, watchdog recovery). A span is a VirtualTime begin/end pair: the begin and
// end stamps come from the board's own clock, never from the host's wall clock, so a
// trace is bit-identical across runs and hosts. Span ids derive from the session seed
// and a per-tracer sequence number via DeriveSeedStream — stable, collision-resistant,
// and free of global state.
//
// Every ended span lands in a registry histogram ("span.<name>_us"). High-frequency
// phases stay histogram-only; rare, diagnostic phases (deploy, reflash, watchdog
// recovery) are additionally journaled as "span" events when a sink is attached.

#ifndef SRC_TELEMETRY_TRACE_H_
#define SRC_TELEMETRY_TRACE_H_

#include <map>
#include <string>

#include "src/common/vclock.h"
#include "src/telemetry/journal.h"
#include "src/telemetry/metrics.h"

namespace eof {
namespace telemetry {

// One tracer per board session, used from that session's thread only (its registry
// handles are thread-safe; its span-handle bookkeeping is not).
class Tracer {
 public:
  struct Span {
    uint64_t id = 0;
    const char* name = nullptr;
    VirtualTime begin = 0;
  };

  // `registry` must outlive the tracer; `sink` may be null (spans then only feed
  // histograms).
  Tracer(MetricsRegistry* registry, uint64_t session_seed, int worker, EventSink* sink);

  Span Begin(const char* name, VirtualTime now);

  // Records end-begin into the span's duration histogram; with `journal` set and a
  // sink attached, also emits {"type":"span","span":name,"span_id":...,"begin_us":...,
  // "dur_us":...}.
  void End(const Span& span, VirtualTime now, bool journal = false);

 private:
  Histogram* HistogramFor(const char* name);

  MetricsRegistry* registry_;
  EventSink* sink_;
  uint64_t seed_;
  int worker_;
  uint64_t sequence_ = 0;
  std::map<std::string, Histogram*> histograms_;
};

}  // namespace telemetry
}  // namespace eof

#endif  // SRC_TELEMETRY_TRACE_H_
