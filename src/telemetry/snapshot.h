// CampaignSnapshot emission: the periodic per-board / farm-wide metric rows behind
// `eof fuzz --metrics-out`. Workers report their session clock after every execution;
// whenever a board crosses an interval boundary its registry is snapshotted into a
// "board_snapshot" JSONL row, and whenever the campaign frontier (the slowest active
// board's clock — the same rule the coverage series uses) crosses a boundary the
// merged per-board registries plus the scheduler's campaign view become one
// "farm_snapshot" row. Emission is driven purely by virtual time and never touches
// campaign state, so metrics-on and metrics-off runs are bit-identical.

#ifndef SRC_TELEMETRY_SNAPSHOT_H_
#define SRC_TELEMETRY_SNAPSHOT_H_

#include <functional>
#include <mutex>
#include <vector>

#include "src/common/vclock.h"
#include "src/telemetry/journal.h"
#include "src/telemetry/metrics.h"

namespace eof {
namespace telemetry {

// The campaign-global numbers only the scheduler knows (its coverage map, corpus,
// and bug ledger); polled at each farm-row boundary.
struct CampaignView {
  uint64_t coverage = 0;
  uint64_t corpus = 0;
  uint64_t execs = 0;
  uint64_t crashes = 0;
  uint64_t bugs = 0;
  uint64_t bugs_rejected = 0;  // first sightings the cold-boot validation oracle refused
  // Attribution bookkeeping (0 unless directed/trim modes ran): predicted-edge
  // hits, current frontier size, and trimmer call accounting.
  uint64_t directed_hits = 0;
  uint64_t frontier = 0;
  uint64_t trim_removed_calls = 0;
  uint64_t trim_kept_calls = 0;
};

class SnapshotEmitter {
 public:
  // `boards[i]` is worker i's registry; registries and `sink` must outlive the
  // emitter. `interval` <= 0 disables periodic rows (Finish still emits a final
  // farm row). `view` is called outside any campaign lock the caller holds.
  // `labels[i]` (when non-empty) stamps board rows with worker i's campaign-global
  // shard label instead of its local slot, so merged fleet journals keep boards
  // distinct; `emit_farm_rows=false` suppresses farm_snapshot rows entirely (fleet
  // workers — the orchestrator journals the authoritative campaign-wide rows).
  SnapshotEmitter(std::vector<const MetricsRegistry*> boards,
                  std::function<CampaignView()> view, EventSink* sink,
                  VirtualDuration interval, VirtualDuration budget,
                  std::vector<int> labels = {}, bool emit_farm_rows = true);

  // Worker `worker` has lived to `elapsed` on its own board clock. Emits every
  // board row the worker newly crossed and every farm row the frontier newly
  // crossed. Cheap when no boundary was crossed: one mutex + two compares.
  void MaybeEmit(int worker, VirtualTime elapsed);

  // The worker's session ended; it no longer holds the frontier back. `elapsed`
  // (when non-zero) stamps a final board_snapshot row at the session's closing
  // clock so per-board time accounting covers the whole session, not just the
  // last interval boundary crossed.
  void WorkerDone(int worker, VirtualTime elapsed = 0);

  // Emits the final farm row at campaign end and flushes the sink.
  void Finish(VirtualTime elapsed);

 private:
  void EmitBoardLocked(int worker, VirtualTime at);
  void EmitFarmLocked(VirtualTime at);
  VirtualTime FrontierLocked() const;

  std::vector<const MetricsRegistry*> boards_;
  std::function<CampaignView()> view_;
  EventSink* sink_;
  VirtualDuration interval_;
  VirtualDuration budget_;
  std::vector<int> labels_;  // empty = identity
  bool emit_farm_rows_;

  std::mutex mu_;
  std::vector<VirtualTime> elapsed_;
  std::vector<VirtualTime> next_board_;
  std::vector<bool> done_;
  VirtualTime next_farm_;
};

}  // namespace telemetry
}  // namespace eof

#endif  // SRC_TELEMETRY_SNAPSHOT_H_
