#include "src/telemetry/trace.h"

#include "src/common/hash.h"

namespace eof {
namespace telemetry {

Tracer::Tracer(MetricsRegistry* registry, uint64_t session_seed, int worker,
               EventSink* sink)
    : registry_(registry), sink_(sink), seed_(session_seed), worker_(worker) {}

Tracer::Span Tracer::Begin(const char* name, VirtualTime now) {
  Span span;
  span.id = DeriveSeedStream(seed_, ++sequence_);
  span.name = name;
  span.begin = now;
  return span;
}

void Tracer::End(const Span& span, VirtualTime now, bool journal) {
  VirtualDuration duration = now >= span.begin ? now - span.begin : 0;
  HistogramFor(span.name)->Observe(duration);
  if (journal && sink_ != nullptr) {
    Event event;
    event.at = now;
    event.type = "span";
    event.worker = worker_;
    event.fields.push_back(EventField::Text("span", span.name));
    event.fields.push_back(EventField::Uint("span_id", span.id));
    event.fields.push_back(EventField::Uint("begin_us", span.begin));
    event.fields.push_back(EventField::Uint("dur_us", duration));
    sink_->Emit(event);
  }
}

Histogram* Tracer::HistogramFor(const char* name) {
  auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    return it->second;
  }
  Histogram* histogram = registry_->RegisterHistogram(
      std::string("span.") + name + "_us", DefaultLatencyBoundsUs());
  histograms_.emplace(name, histogram);
  return histogram;
}

}  // namespace telemetry
}  // namespace eof
