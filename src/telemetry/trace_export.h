// Chrome trace-event export: converts journaled trace spans into the JSON
// format chrome://tracing and Perfetto load, so a campaign's deploy / reflash /
// watchdog-recovery phases render as a per-board flamegraph.
//
// Mapping: every `span` row becomes an "X" (complete) event at ts=begin_us with
// dur=dur_us on pid 0 / tid = worker (the board or fleet-worker lane);
// `bug_report` and `liveness_reset` rows become instant events on their lane
// (or a global instant for campaign-scope rows); each lane gets a thread_name
// metadata event. Timestamps are the journal's virtual microseconds verbatim —
// the trace's time axis IS the campaign's virtual clock. Events are ordered by
// ts ascending with longer durations first at a shared ts, which preserves
// parent-before-child nesting for enclosing spans.

#ifndef SRC_TELEMETRY_TRACE_EXPORT_H_
#define SRC_TELEMETRY_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "src/telemetry/report.h"

namespace eof {
namespace telemetry {

// Renders the rows as one Chrome trace JSON object:
//   {"displayTimeUnit":"ms","traceEvents":[...]}
// Rows that are not spans / bugs / liveness resets are skipped.
std::string RenderChromeTrace(const std::vector<JournalRow>& rows);

}  // namespace telemetry
}  // namespace eof

#endif  // SRC_TELEMETRY_TRACE_EXPORT_H_
