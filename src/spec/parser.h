// Recursive-descent parser for the Syzlang-style spec language. Produces a SpecFile AST;
// semantic validation (resource existence, len targets, range sanity) happens in the
// compiler pass (src/spec/compiler.h).

#ifndef SRC_SPEC_PARSER_H_
#define SRC_SPEC_PARSER_H_

#include <string>

#include "src/common/status.h"
#include "src/spec/syzlang.h"

namespace eof {
namespace spec {

Result<SpecFile> ParseSpec(const std::string& source);

}  // namespace spec
}  // namespace eof

#endif  // SRC_SPEC_PARSER_H_
