#include "src/spec/spec_miner.h"

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/spec/emitter.h"
#include "src/spec/parser.h"

namespace eof {
namespace spec {
namespace {

// Extraction-noise operators: each mangles a declaration the way sloppy generation does.
std::string CorruptLine(Rng& rng, const std::string& line) {
  if (line.empty() || line[0] == '#') {
    return line;
  }
  switch (rng.Below(4)) {
    case 0: {  // drop a bracket
      std::string out = line;
      size_t pos = out.find_first_of("[]()");
      if (pos != std::string::npos) {
        out.erase(pos, 1);
      }
      return out;
    }
    case 1:  // hallucinated trailing token
      return line + " ???";
    case 2: {  // truncate mid-declaration
      return line.substr(0, line.size() / 2);
    }
    default: {  // mangle the call name (will fail registry binding, not parsing)
      std::string out = line;
      if (!out.empty() && isalpha(static_cast<unsigned char>(out[0])) != 0) {
        out[0] = out[0] == 'z' ? 'a' : static_cast<char>(out[0] + 1);
      }
      return out;
    }
  }
}

// Parses, and on a line-tagged failure removes that line; repeats until the text parses.
Result<SpecFile> ParseWithRepair(std::string* source, int* rounds,
                                 std::vector<std::string>* rejected) {
  for (int attempt = 0; attempt < 256; ++attempt) {
    auto parsed = ParseSpec(*source);
    if (parsed.ok()) {
      *rounds = attempt;
      return parsed;
    }
    // Extract "line N" from the diagnostic and drop that line.
    Status failure = parsed.status();
    const std::string& message = failure.message();
    size_t tag = message.find("line ");
    if (tag == std::string::npos) {
      return parsed.status();
    }
    int line_number = atoi(message.c_str() + tag + 5);
    if (line_number <= 0) {
      return parsed.status();
    }
    std::vector<std::string> lines = StrSplit(*source, '\n', /*keep_empty=*/true);
    if (static_cast<size_t>(line_number) > lines.size()) {
      return parsed.status();
    }
    if (rejected != nullptr) {
      rejected->push_back(StrFormat("parse: dropped line %d: %s", line_number,
                                    lines[static_cast<size_t>(line_number - 1)].c_str()));
    }
    lines[static_cast<size_t>(line_number - 1)].clear();
    *source = StrJoin(lines, "\n");
  }
  return InternalError("spec repair did not converge");
}

}  // namespace

std::string MineSyzlang(const ApiRegistry& registry, const MinerOptions& options) {
  EmitOptions emit;
  emit.include_extended = options.include_extended;
  std::string source = EmitSyzlang(registry, emit);
  if (options.noise_per_mille == 0) {
    return source;
  }
  Rng rng(options.seed);
  std::vector<std::string> lines = StrSplit(source, '\n', /*keep_empty=*/true);
  for (std::string& line : lines) {
    if (rng.Below(1000) < options.noise_per_mille) {
      line = CorruptLine(rng, line);
    }
  }
  return StrJoin(lines, "\n");
}

Result<MinedSpecs> MineValidatedSpecs(const ApiRegistry& registry,
                                      const MinerOptions& options) {
  MinedSpecs mined;
  mined.source = MineSyzlang(registry, options);
  ASSIGN_OR_RETURN(SpecFile file,
                   ParseWithRepair(&mined.source, &mined.repair_rounds, &mined.rejected));
  ASSIGN_OR_RETURN(mined.specs, CompileSpec(file, registry, &mined.rejected));
  return mined;
}

}  // namespace spec
}  // namespace eof
