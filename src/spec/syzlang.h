// AST for the Syzlang-style API specification language (§4.5, "LLM-based Input
// Generation"). EOF converts these specifications into the generator's internal form;
// the miner emits them as text, and the parser + validator round-trip them, mirroring the
// paper's "generated specifications are post-validated by parsing and type checking".
//
// Supported surface (one declaration per line, '#' comments):
//
//   resource task_handle[int32]
//   notify_action = 0, 1, 2, 3, 4
//   xTaskCreate(name string["main", "rx"], stack int32[128:4096], prio int32[0:32]) task_handle
//   vTaskDelete(task task_handle[opt])
//   xQueueSend(q queue_handle, item buffer[0:512], front int8[0:1])
//   syz_worker_pipeline(workers int32[0:16], items int32[0:64]) (pseudo, extended)
//
// Types: intN[min:max] | flags[name] | flags[v1, v2, ...] | <resource>[opt]
//        | buffer[min:max] | string | string["a", "b"] | len[argname]

#ifndef SRC_SPEC_SYZLANG_H_
#define SRC_SPEC_SYZLANG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace eof {
namespace spec {

enum class TypeKind : uint8_t {
  kInt,
  kFlags,
  kResource,
  kBuffer,
  kString,
  kLen,
};

struct TypeRef {
  TypeKind kind = TypeKind::kInt;

  // kInt:
  unsigned bits = 32;
  bool has_range = false;
  uint64_t min = 0;
  uint64_t max = 0;

  // kFlags: either a named set or inline values.
  std::string flags_name;
  std::vector<uint64_t> inline_flags;

  // kResource:
  std::string resource;
  bool optional = false;

  // kBuffer:
  uint64_t buf_min = 0;
  uint64_t buf_max = 256;

  // kString:
  std::vector<std::string> string_values;

  // kLen:
  std::string len_target;
};

struct FieldDecl {
  std::string name;
  TypeRef type;
};

struct CallDecl {
  std::string name;
  std::vector<FieldDecl> args;
  std::string returns_resource;  // "" when the call returns a plain status
  bool pseudo = false;
  bool extended = false;
  int line = 0;  // source line, for diagnostics
};

struct ResourceDecl {
  std::string name;
  unsigned bits = 32;
  int line = 0;
};

struct FlagsDecl {
  std::string name;
  std::vector<uint64_t> values;
  std::vector<uint64_t> extended_values;  // values after an `extended:` marker
  int line = 0;
};

struct SpecFile {
  std::map<std::string, ResourceDecl> resources;
  std::map<std::string, FlagsDecl> flag_sets;
  std::vector<CallDecl> calls;
};

}  // namespace spec
}  // namespace eof

#endif  // SRC_SPEC_SYZLANG_H_
