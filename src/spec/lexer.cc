#include "src/spec/lexer.h"

#include <cctype>

#include "src/common/strings.h"

namespace eof {
namespace spec {

Result<std::vector<Token>> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  auto push = [&](TokenKind kind, std::string text = "", uint64_t number = 0) {
    if (kind == TokenKind::kNewline &&
        (tokens.empty() || tokens.back().kind == TokenKind::kNewline)) {
      return;  // collapse blank lines and drop leading ones
    }
    tokens.push_back(Token{kind, std::move(text), number, line});
  };

  while (i < source.size()) {
    char c = source[i];
    if (c == '#') {
      while (i < source.size() && source[i] != '\n') {
        ++i;
      }
      continue;
    }
    if (c == '\n') {
      push(TokenKind::kNewline);
      ++line;
      ++i;
      continue;
    }
    if (isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '(') {
      push(TokenKind::kLParen);
      ++i;
      continue;
    }
    if (c == ')') {
      push(TokenKind::kRParen);
      ++i;
      continue;
    }
    if (c == '[') {
      push(TokenKind::kLBracket);
      ++i;
      continue;
    }
    if (c == ']') {
      push(TokenKind::kRBracket);
      ++i;
      continue;
    }
    if (c == ',') {
      push(TokenKind::kComma);
      ++i;
      continue;
    }
    if (c == ':') {
      push(TokenKind::kColon);
      ++i;
      continue;
    }
    if (c == '=') {
      push(TokenKind::kEquals);
      ++i;
      continue;
    }
    if (c == '"') {
      size_t start = ++i;
      std::string value;
      bool closed = false;
      while (i < source.size()) {
        if (source[i] == '"') {
          closed = true;
          break;
        }
        if (source[i] == '\n') {
          break;
        }
        if (source[i] == '\\' && i + 1 < source.size()) {
          ++i;  // keep escaped char verbatim
        }
        value.push_back(source[i]);
        ++i;
      }
      if (!closed) {
        return InvalidArgumentError(
            StrFormat("line %d: unterminated string literal", line));
      }
      ++i;  // closing quote
      (void)start;
      push(TokenKind::kString, std::move(value));
      continue;
    }
    if (isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '0' && i + 1 < source.size() && source[i + 1] == 'x')) {
      uint64_t value = 0;
      if (source.compare(i, 2, "0x") == 0) {
        i += 2;
        size_t digits = 0;
        while (i < source.size() && isxdigit(static_cast<unsigned char>(source[i])) != 0) {
          char d = static_cast<char>(tolower(static_cast<unsigned char>(source[i])));
          value = value * 16 +
                  static_cast<uint64_t>(d <= '9' ? d - '0' : d - 'a' + 10);
          ++i;
          ++digits;
        }
        if (digits == 0) {
          return InvalidArgumentError(StrFormat("line %d: bare 0x prefix", line));
        }
      } else {
        while (i < source.size() && isdigit(static_cast<unsigned char>(source[i])) != 0) {
          value = value * 10 + static_cast<uint64_t>(source[i] - '0');
          ++i;
        }
      }
      push(TokenKind::kNumber, "", value);
      continue;
    }
    if (isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' || c == '/' || c == '$') {
      std::string ident;
      while (i < source.size() &&
             (isalnum(static_cast<unsigned char>(source[i])) != 0 || source[i] == '_' ||
              source[i] == '/' || source[i] == '$' || source[i] == '.')) {
        ident.push_back(source[i]);
        ++i;
      }
      push(TokenKind::kIdent, std::move(ident));
      continue;
    }
    return InvalidArgumentError(StrFormat("line %d: unexpected character '%c'", line, c));
  }
  push(TokenKind::kNewline);
  tokens.push_back(Token{TokenKind::kEnd, "", 0, line});
  return tokens;
}

}  // namespace spec
}  // namespace eof
