#include "src/spec/emitter.h"

#include <set>

#include "src/common/strings.h"

namespace eof {
namespace spec {
namespace {

const char* BitsName(unsigned bits) {
  switch (bits) {
    case 8:
      return "int8";
    case 16:
      return "int16";
    case 64:
      return "int64";
    default:
      return "int32";
  }
}

std::string EmitType(const ApiSpec& api, const ArgSpec& arg, bool include_extended,
                     std::string* flag_decl_out) {
  switch (arg.kind) {
    case ArgKind::kScalar: {
      uint64_t cap = arg.bits >= 64 ? UINT64_MAX : (1ULL << arg.bits) - 1;
      if (arg.min == 0 && arg.max >= cap) {
        return BitsName(arg.bits);
      }
      return StrFormat("%s[%llu:%llu]", BitsName(arg.bits),
                       static_cast<unsigned long long>(arg.min),
                       static_cast<unsigned long long>(arg.max > cap ? cap : arg.max));
    }
    case ArgKind::kFlags: {
      if (arg.extended_flag_values.empty() || !include_extended) {
        std::string values;
        for (size_t i = 0; i < arg.flag_values.size(); ++i) {
          values += StrFormat("%s%llu", i == 0 ? "" : ", ",
                              static_cast<unsigned long long>(arg.flag_values[i]));
        }
        return "flags[" + values + "]";
      }
      // Extended values need a named set with the `extended:` marker.
      std::string set_name = api.name + "_" + arg.name + "_flags";
      std::string decl = set_name + " = ";
      for (size_t i = 0; i < arg.flag_values.size(); ++i) {
        decl += StrFormat("%s%llu", i == 0 ? "" : ", ",
                          static_cast<unsigned long long>(arg.flag_values[i]));
      }
      decl += " extended: ";
      for (size_t i = 0; i < arg.extended_flag_values.size(); ++i) {
        decl += StrFormat("%s%llu", i == 0 ? "" : ", ",
                          static_cast<unsigned long long>(arg.extended_flag_values[i]));
      }
      *flag_decl_out += decl + "\n";
      return "flags[" + set_name + "]";
    }
    case ArgKind::kResource:
      return arg.resource_kind + (arg.optional_null ? "[opt]" : "");
    case ArgKind::kBuffer:
      return StrFormat("buffer[%llu:%llu]", static_cast<unsigned long long>(arg.buf_min),
                       static_cast<unsigned long long>(arg.buf_max));
    case ArgKind::kString: {
      if (arg.string_set.empty()) {
        return "string";
      }
      std::string values;
      for (size_t i = 0; i < arg.string_set.size(); ++i) {
        values += (i == 0 ? "" : ", ") + ("\"" + arg.string_set[i] + "\"");
      }
      return "string[" + values + "]";
    }
    case ArgKind::kLen:
      return StrFormat("len[%s]",
                       api.args[static_cast<size_t>(arg.len_of)].name.c_str());
  }
  return "int32";
}

}  // namespace

std::string EmitSyzlang(const ApiRegistry& registry, const EmitOptions& options) {
  std::string out;
  std::string flag_decls;
  std::set<std::string> resources;

  // Resource declarations first: every produced kind plus every consumed kind (a consumed
  // kind with no producer still needs a declaration to validate).
  for (const ApiSpec& api : registry.all()) {
    if (!options.include_extended && api.extended_spec) {
      continue;
    }
    if (!api.produces.empty()) {
      resources.insert(api.produces);
    }
    for (const ArgSpec& arg : api.args) {
      if (arg.kind == ArgKind::kResource) {
        resources.insert(arg.resource_kind);
      }
    }
  }
  for (const std::string& resource : resources) {
    out += "resource " + resource + "[int32]\n";
  }
  out += "\n";

  std::string calls;
  for (const ApiSpec& api : registry.all()) {
    if (!options.include_extended && api.extended_spec) {
      continue;
    }
    if (options.with_comments && !api.doc.empty()) {
      calls += "# " + api.doc + "\n";
    }
    calls += api.name + "(";
    for (size_t i = 0; i < api.args.size(); ++i) {
      if (i != 0) {
        calls += ", ";
      }
      calls += api.args[i].name + " " +
               EmitType(api, api.args[i], options.include_extended, &flag_decls);
    }
    calls += ")";
    if (!api.produces.empty()) {
      calls += " " + api.produces;
    }
    if (api.is_pseudo || api.extended_spec) {
      calls += " (";
      if (api.is_pseudo) {
        calls += "pseudo";
      }
      if (api.extended_spec) {
        calls += api.is_pseudo ? ", extended" : "extended";
      }
      calls += ")";
    }
    calls += "\n";
  }
  return out + flag_decls + "\n" + calls;
}

}  // namespace spec
}  // namespace eof
