#include "src/spec/parser.h"

#include "src/common/strings.h"
#include "src/spec/lexer.h"

namespace eof {
namespace spec {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SpecFile> Parse() {
    SpecFile file;
    while (!At(TokenKind::kEnd)) {
      if (At(TokenKind::kNewline)) {
        Advance();
        continue;
      }
      RETURN_IF_ERROR(ParseDeclaration(&file));
    }
    return file;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  bool At(TokenKind kind) const { return Cur().kind == kind; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) {
      ++pos_;
    }
  }

  Status Expect(TokenKind kind, const char* what) {
    if (!At(kind)) {
      return InvalidArgumentError(StrFormat("line %d: expected %s", Cur().line, what));
    }
    Advance();
    return OkStatus();
  }

  Status ParseDeclaration(SpecFile* file) {
    if (!At(TokenKind::kIdent)) {
      return InvalidArgumentError(
          StrFormat("line %d: expected a declaration", Cur().line));
    }
    std::string head = Cur().text;
    int line = Cur().line;
    Advance();

    if (head == "resource") {
      return ParseResource(file, line);
    }
    if (At(TokenKind::kEquals)) {
      return ParseFlagSet(file, head, line);
    }
    if (At(TokenKind::kLParen)) {
      return ParseCall(file, head, line);
    }
    return InvalidArgumentError(
        StrFormat("line %d: malformed declaration after '%s'", line, head.c_str()));
  }

  // resource <name>[intN]
  Status ParseResource(SpecFile* file, int line) {
    if (!At(TokenKind::kIdent)) {
      return InvalidArgumentError(StrFormat("line %d: resource name expected", line));
    }
    ResourceDecl decl;
    decl.name = Cur().text;
    decl.line = line;
    Advance();
    RETURN_IF_ERROR(Expect(TokenKind::kLBracket, "'['"));
    if (!At(TokenKind::kIdent)) {
      return InvalidArgumentError(StrFormat("line %d: resource base type expected", line));
    }
    unsigned bits = 32;
    if (!ParseIntBits(Cur().text, &bits)) {
      return InvalidArgumentError(
          StrFormat("line %d: '%s' is not an integer base type", line, Cur().text.c_str()));
    }
    decl.bits = bits;
    Advance();
    RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']'"));
    RETURN_IF_ERROR(Expect(TokenKind::kNewline, "end of line"));
    if (file->resources.count(decl.name) != 0) {
      return AlreadyExistsError(
          StrFormat("line %d: resource '%s' redeclared", line, decl.name.c_str()));
    }
    file->resources[decl.name] = decl;
    return OkStatus();
  }

  // <name> = v1, v2, ... [extended: v3, v4]
  Status ParseFlagSet(SpecFile* file, const std::string& name, int line) {
    RETURN_IF_ERROR(Expect(TokenKind::kEquals, "'='"));
    FlagsDecl decl;
    decl.name = name;
    decl.line = line;
    bool extended_section = false;
    for (;;) {
      if (At(TokenKind::kIdent) && Cur().text == "extended") {
        if (extended_section) {
          return InvalidArgumentError(
              StrFormat("line %d: duplicate extended section", Cur().line));
        }
        Advance();
        RETURN_IF_ERROR(Expect(TokenKind::kColon, "':' after extended"));
        extended_section = true;
        continue;
      }
      if (!At(TokenKind::kNumber)) {
        return InvalidArgumentError(StrFormat("line %d: flag value expected", Cur().line));
      }
      (extended_section ? decl.extended_values : decl.values).push_back(Cur().number);
      Advance();
      if (At(TokenKind::kComma)) {
        Advance();
        continue;
      }
      if (At(TokenKind::kIdent) && Cur().text == "extended") {
        continue;  // "v1, v2 extended: v3" — section marker without a comma
      }
      break;
    }
    RETURN_IF_ERROR(Expect(TokenKind::kNewline, "end of line"));
    if (file->flag_sets.count(name) != 0) {
      return AlreadyExistsError(
          StrFormat("line %d: flag set '%s' redeclared", line, name.c_str()));
    }
    file->flag_sets[name] = std::move(decl);
    return OkStatus();
  }

  // <name>(<field>*) [retres] [(attr, ...)]
  Status ParseCall(SpecFile* file, const std::string& name, int line) {
    RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    CallDecl decl;
    decl.name = name;
    decl.line = line;
    if (!At(TokenKind::kRParen)) {
      for (;;) {
        FieldDecl field;
        if (!At(TokenKind::kIdent)) {
          return InvalidArgumentError(
              StrFormat("line %d: argument name expected", Cur().line));
        }
        field.name = Cur().text;
        Advance();
        ASSIGN_OR_RETURN(field.type, ParseType());
        decl.args.push_back(std::move(field));
        if (At(TokenKind::kComma)) {
          Advance();
          continue;
        }
        break;
      }
    }
    RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    if (At(TokenKind::kIdent)) {
      decl.returns_resource = Cur().text;
      Advance();
    }
    if (At(TokenKind::kLParen)) {
      Advance();
      for (;;) {
        if (!At(TokenKind::kIdent)) {
          return InvalidArgumentError(StrFormat("line %d: attribute expected", Cur().line));
        }
        if (Cur().text == "pseudo") {
          decl.pseudo = true;
        } else if (Cur().text == "extended") {
          decl.extended = true;
        } else {
          return InvalidArgumentError(StrFormat("line %d: unknown attribute '%s'",
                                                Cur().line, Cur().text.c_str()));
        }
        Advance();
        if (At(TokenKind::kComma)) {
          Advance();
          continue;
        }
        break;
      }
      RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')' after attributes"));
    }
    RETURN_IF_ERROR(Expect(TokenKind::kNewline, "end of line"));
    file->calls.push_back(std::move(decl));
    return OkStatus();
  }

  static bool ParseIntBits(const std::string& word, unsigned* bits) {
    if (word == "int8") {
      *bits = 8;
    } else if (word == "int16") {
      *bits = 16;
    } else if (word == "int32") {
      *bits = 32;
    } else if (word == "int64") {
      *bits = 64;
    } else {
      return false;
    }
    return true;
  }

  Result<TypeRef> ParseType() {
    if (!At(TokenKind::kIdent)) {
      return InvalidArgumentError(StrFormat("line %d: type expected", Cur().line));
    }
    std::string word = Cur().text;
    int line = Cur().line;
    Advance();
    TypeRef type;

    unsigned bits = 0;
    if (ParseIntBits(word, &bits)) {
      type.kind = TypeKind::kInt;
      type.bits = bits;
      if (At(TokenKind::kLBracket)) {
        Advance();
        if (!At(TokenKind::kNumber)) {
          return InvalidArgumentError(StrFormat("line %d: range min expected", line));
        }
        type.min = Cur().number;
        Advance();
        RETURN_IF_ERROR(Expect(TokenKind::kColon, "':' in range"));
        if (!At(TokenKind::kNumber)) {
          return InvalidArgumentError(StrFormat("line %d: range max expected", line));
        }
        type.max = Cur().number;
        type.has_range = true;
        Advance();
        RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']' after range"));
      }
      return type;
    }

    if (word == "flags") {
      type.kind = TypeKind::kFlags;
      RETURN_IF_ERROR(Expect(TokenKind::kLBracket, "'[' after flags"));
      if (At(TokenKind::kIdent)) {
        type.flags_name = Cur().text;
        Advance();
      } else {
        for (;;) {
          if (!At(TokenKind::kNumber)) {
            return InvalidArgumentError(StrFormat("line %d: flag value expected", line));
          }
          type.inline_flags.push_back(Cur().number);
          Advance();
          if (At(TokenKind::kComma)) {
            Advance();
            continue;
          }
          break;
        }
      }
      RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']' after flags"));
      return type;
    }

    if (word == "buffer") {
      type.kind = TypeKind::kBuffer;
      RETURN_IF_ERROR(Expect(TokenKind::kLBracket, "'[' after buffer"));
      if (!At(TokenKind::kNumber)) {
        return InvalidArgumentError(StrFormat("line %d: buffer min expected", line));
      }
      type.buf_min = Cur().number;
      Advance();
      RETURN_IF_ERROR(Expect(TokenKind::kColon, "':' in buffer bounds"));
      if (!At(TokenKind::kNumber)) {
        return InvalidArgumentError(StrFormat("line %d: buffer max expected", line));
      }
      type.buf_max = Cur().number;
      Advance();
      RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']' after buffer"));
      return type;
    }

    if (word == "string") {
      type.kind = TypeKind::kString;
      if (At(TokenKind::kLBracket)) {
        Advance();
        for (;;) {
          if (!At(TokenKind::kString)) {
            return InvalidArgumentError(StrFormat("line %d: string literal expected", line));
          }
          type.string_values.push_back(Cur().text);
          Advance();
          if (At(TokenKind::kComma)) {
            Advance();
            continue;
          }
          break;
        }
        RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']' after string set"));
      }
      return type;
    }

    if (word == "len") {
      type.kind = TypeKind::kLen;
      RETURN_IF_ERROR(Expect(TokenKind::kLBracket, "'[' after len"));
      if (!At(TokenKind::kIdent)) {
        return InvalidArgumentError(StrFormat("line %d: len target expected", line));
      }
      type.len_target = Cur().text;
      Advance();
      RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']' after len"));
      return type;
    }

    // Anything else is a resource reference, optionally [opt].
    type.kind = TypeKind::kResource;
    type.resource = word;
    if (At(TokenKind::kLBracket)) {
      Advance();
      if (!At(TokenKind::kIdent) || Cur().text != "opt") {
        return InvalidArgumentError(StrFormat("line %d: only [opt] is valid here", line));
      }
      Advance();
      RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']' after opt"));
      type.optional = true;
    }
    return type;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SpecFile> ParseSpec(const std::string& source) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace spec
}  // namespace eof
