#include "src/spec/compiler.h"

#include "src/common/strings.h"

namespace eof {
namespace spec {
namespace {

// Converts one TypeRef to the generator's ArgSpec. Returns a failure description, or ""
// on success.
std::string ConvertType(const SpecFile& file, const CallDecl& call, size_t arg_index,
                        const TypeRef& type, ArgSpec* out) {
  const FieldDecl& field = call.args[arg_index];
  out->name = field.name;
  switch (type.kind) {
    case TypeKind::kInt: {
      out->kind = ArgKind::kScalar;
      out->bits = type.bits;
      if (type.has_range) {
        if (type.min > type.max) {
          return StrFormat("arg '%s': inverted range", field.name.c_str());
        }
        out->min = type.min;
        out->max = type.max;
      } else {
        out->min = 0;
        out->max = type.bits >= 64 ? UINT64_MAX : (1ULL << type.bits) - 1;
      }
      return "";
    }
    case TypeKind::kFlags: {
      out->kind = ArgKind::kFlags;
      if (!type.flags_name.empty()) {
        auto it = file.flag_sets.find(type.flags_name);
        if (it == file.flag_sets.end()) {
          return StrFormat("arg '%s': unknown flag set '%s'", field.name.c_str(),
                           type.flags_name.c_str());
        }
        out->flag_values = it->second.values;
        out->extended_flag_values = it->second.extended_values;
      } else {
        out->flag_values = type.inline_flags;
      }
      if (out->flag_values.empty() && out->extended_flag_values.empty()) {
        return StrFormat("arg '%s': empty flag set", field.name.c_str());
      }
      return "";
    }
    case TypeKind::kResource: {
      out->kind = ArgKind::kResource;
      if (file.resources.count(type.resource) == 0) {
        return StrFormat("arg '%s': unknown resource '%s'", field.name.c_str(),
                         type.resource.c_str());
      }
      out->resource_kind = type.resource;
      out->optional_null = type.optional;
      return "";
    }
    case TypeKind::kBuffer: {
      out->kind = ArgKind::kBuffer;
      if (type.buf_min > type.buf_max) {
        return StrFormat("arg '%s': inverted buffer bounds", field.name.c_str());
      }
      out->buf_min = type.buf_min;
      out->buf_max = type.buf_max;
      return "";
    }
    case TypeKind::kString: {
      out->kind = ArgKind::kString;
      out->string_set = type.string_values;
      return "";
    }
    case TypeKind::kLen: {
      out->kind = ArgKind::kLen;
      int target = -1;
      for (size_t i = 0; i < call.args.size(); ++i) {
        if (call.args[i].name == type.len_target) {
          target = static_cast<int>(i);
          break;
        }
      }
      if (target < 0) {
        return StrFormat("arg '%s': len target '%s' not found", field.name.c_str(),
                         type.len_target.c_str());
      }
      TypeKind target_kind = call.args[static_cast<size_t>(target)].type.kind;
      if (target_kind != TypeKind::kBuffer && target_kind != TypeKind::kString) {
        return StrFormat("arg '%s': len target is not a buffer", field.name.c_str());
      }
      out->len_of = target;
      return "";
    }
  }
  return "unhandled type kind";
}

}  // namespace

Result<CompiledSpecs> CompileSpec(const SpecFile& file, const ApiRegistry& registry,
                                  std::vector<std::string>* rejected) {
  CompiledSpecs specs;
  auto reject = [&](const CallDecl& call, const std::string& why) {
    if (rejected != nullptr) {
      rejected->push_back(StrFormat("%s (line %d): %s", call.name.c_str(), call.line,
                                    why.c_str()));
    }
  };

  for (const CallDecl& call : file.calls) {
    const ApiSpec* target = registry.FindByName(call.name);
    if (target == nullptr) {
      reject(call, "no such API on the target");
      continue;
    }
    if (target->args.size() != call.args.size()) {
      reject(call, StrFormat("arity mismatch: target takes %zu args, spec has %zu",
                             target->args.size(), call.args.size()));
      continue;
    }
    if (!call.returns_resource.empty() &&
        file.resources.count(call.returns_resource) == 0) {
      reject(call, StrFormat("returns undeclared resource '%s'",
                             call.returns_resource.c_str()));
      continue;
    }
    CompiledCall compiled;
    compiled.api_id = target->id;
    compiled.name = call.name;
    compiled.subsystem = target->subsystem;
    compiled.produces = call.returns_resource;
    compiled.is_pseudo = call.pseudo;
    compiled.extended = call.extended;
    bool ok = true;
    for (size_t i = 0; i < call.args.size(); ++i) {
      ArgSpec arg;
      std::string why = ConvertType(file, call, i, call.args[i].type, &arg);
      if (!why.empty()) {
        reject(call, why);
        ok = false;
        break;
      }
      compiled.args.push_back(std::move(arg));
    }
    if (!ok) {
      continue;
    }
    if (specs.FindByName(compiled.name) != nullptr) {
      reject(call, "duplicate declaration");
      continue;
    }
    specs.calls.push_back(std::move(compiled));
  }
  if (specs.calls.empty()) {
    return InvalidArgumentError("no specification validated against the target registry");
  }
  return specs;
}

}  // namespace spec
}  // namespace eof
