// Spec compiler: semantic validation of a parsed SpecFile and binding against a target
// OS's ApiRegistry (the paper's post-validation: "only validated specifications are
// admitted to the corpus"). The output is the generator's internal form.

#ifndef SRC_SPEC_COMPILER_H_
#define SRC_SPEC_COMPILER_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/kernel/api.h"
#include "src/spec/syzlang.h"

namespace eof {
namespace spec {

// One callable, fully resolved: the registry id plus the generator-facing argument model.
struct CompiledCall {
  uint32_t api_id = 0;
  std::string name;
  std::string subsystem;
  std::vector<ArgSpec> args;
  std::string produces;
  bool is_pseudo = false;
  bool extended = false;
};

struct CompiledSpecs {
  std::vector<CompiledCall> calls;

  const CompiledCall* FindByName(const std::string& name) const {
    for (const CompiledCall& call : calls) {
      if (call.name == name) {
        return &call;
      }
    }
    return nullptr;
  }
};

// Validates `file` (resources exist, flag sets resolvable, len targets valid, ranges sane)
// and binds each call to `registry` by name and arity. Calls that do not validate are
// reported in `rejected` (when non-null) and dropped; the returned specs contain only the
// admitted ones. Fails outright when nothing validates.
Result<CompiledSpecs> CompileSpec(const SpecFile& file, const ApiRegistry& registry,
                                  std::vector<std::string>* rejected = nullptr);

}  // namespace spec
}  // namespace eof

#endif  // SRC_SPEC_COMPILER_H_
