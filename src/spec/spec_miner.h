// The spec miner: this reproduction's stand-in for the paper's GPT-4o pass (§4.5), which
// was prompted with headers/unit tests/API reference text and asked to emit Syzlang. Here
// the "reference text" is the target's API registry; the miner emits Syzlang (optionally
// with extraction noise to model imperfect LLM output), and MineValidatedSpecs runs the
// same post-validation loop the paper describes — parse + type-check, dropping lines that
// fail until the file validates, admitting only validated specifications.

#ifndef SRC_SPEC_SPEC_MINER_H_
#define SRC_SPEC_SPEC_MINER_H_

#include <string>

#include "src/common/status.h"
#include "src/kernel/api.h"
#include "src/spec/compiler.h"

namespace eof {
namespace spec {

struct MinerOptions {
  // Include the extended tier (pseudo-syscalls, header-only constants). Baseline spec
  // sets (Tardis-style, hand-written) are modelled by mining with this off.
  bool include_extended = true;
  // Probability (num/1000) of corrupting an emitted declaration line, modelling flawed
  // extraction. Corrupted lines are rejected by post-validation, not executed.
  uint32_t noise_per_mille = 0;
  uint64_t seed = 1;
};

// Emits (possibly noisy) Syzlang for the registry.
std::string MineSyzlang(const ApiRegistry& registry, const MinerOptions& options = {});

struct MinedSpecs {
  CompiledSpecs specs;
  std::string source;                  // final validated Syzlang text
  std::vector<std::string> rejected;   // diagnostics for dropped declarations
  int repair_rounds = 0;               // parse-failure lines removed before success
};

// Full pipeline: mine -> parse -> repair (drop failing lines) -> compile -> admit.
Result<MinedSpecs> MineValidatedSpecs(const ApiRegistry& registry,
                                      const MinerOptions& options = {});

}  // namespace spec
}  // namespace eof

#endif  // SRC_SPEC_SPEC_MINER_H_
