// Tokenizer for the Syzlang-style spec language.

#ifndef SRC_SPEC_LEXER_H_
#define SRC_SPEC_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace eof {
namespace spec {

enum class TokenKind : uint8_t {
  kIdent,
  kNumber,
  kString,    // double-quoted literal (content unescaped)
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kColon,
  kEquals,
  kNewline,   // significant: declarations are line-oriented
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // ident/string content
  uint64_t number = 0;  // kNumber value
  int line = 0;
};

// Tokenizes `source`. '#' starts a comment running to end of line. Consecutive newlines
// collapse into one kNewline token. Fails on unterminated strings and unknown characters.
Result<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace spec
}  // namespace eof

#endif  // SRC_SPEC_LEXER_H_
