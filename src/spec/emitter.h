// Emits Syzlang text from an ApiRegistry — the output format of the spec miner. The
// emitted text round-trips through the lexer/parser/compiler, which is how the pipeline
// is tested end to end.

#ifndef SRC_SPEC_EMITTER_H_
#define SRC_SPEC_EMITTER_H_

#include <string>

#include "src/kernel/api.h"

namespace eof {
namespace spec {

struct EmitOptions {
  bool include_extended = true;  // emit extended-tier calls and flag values
  bool with_comments = true;     // '#' doc lines above each call
};

std::string EmitSyzlang(const ApiRegistry& registry, const EmitOptions& options = {});

}  // namespace spec
}  // namespace eof

#endif  // SRC_SPEC_EMITTER_H_
