// Embedded JSON component (the JSON target of Table 4): a recursive-descent parser over
// raw bytes — numbers with fractions/exponents, strings with escapes and \uXXXX, arrays,
// objects, nesting limits, and trailing-garbage detection.

#include <algorithm>
#include <cctype>

#include "src/apps/apps.h"
#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"

namespace eof {
namespace apps {
namespace {

EOF_COV_MODULE("apps/json");

constexpr int kMaxDepth = 12;

// Parse-error codes.
constexpr int64_t kErrEmpty = -1;
constexpr int64_t kErrSyntax = -2;
constexpr int64_t kErrDepth = -3;
constexpr int64_t kErrTrailing = -4;
constexpr int64_t kErrBadEscape = -5;
constexpr int64_t kErrBadNumber = -6;

struct Parser {
  KernelContext& ctx;
  const std::string& text;
  size_t pos = 0;
  int64_t nodes = 0;
  int64_t error = 0;
  uint64_t strings = 0;
  uint64_t escapes = 0;
  uint64_t max_array_width = 0;
  uint64_t max_object_keys = 0;

  bool Done() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  void SkipWs() {
    while (!Done() && isspace(static_cast<unsigned char>(Peek())) != 0) {
      ++pos;
    }
  }

  bool Literal(const char* word) {
    size_t len = 0;
    while (word[len] != '\0') {
      ++len;
    }
    if (text.compare(pos, len, word) != 0) {
      return false;
    }
    pos += len;
    return true;
  }

  bool ParseString() {
    ++pos;  // opening quote
    size_t start = pos;
    ++strings;
    while (!Done()) {
      char c = Peek();
      ++pos;
      if (c == '"') {
        EOF_COV(ctx);
        EOF_COV_BUCKET(ctx, CovSizeClass(pos - start));  // string-length class
        return true;
      }
      if (c == '\\') {
        if (Done()) {
          break;
        }
        ++escapes;
        char esc = Peek();
        ++pos;
        switch (esc) {
          case '"':
          case '\\':
          case '/':
          case 'b':
          case 'f':
          case 'n':
          case 'r':
          case 't':
            EOF_COV(ctx);
            break;
          case 'u': {
            EOF_COV(ctx);
            for (int i = 0; i < 4; ++i) {
              if (Done() || isxdigit(static_cast<unsigned char>(Peek())) == 0) {
                EOF_COV(ctx);
                error = kErrBadEscape;
                return false;
              }
              ++pos;
            }
            break;
          }
          default:
            EOF_COV(ctx);
            error = kErrBadEscape;
            return false;
        }
      }
    }
    EOF_COV(ctx);
    error = kErrSyntax;  // unterminated string
    return false;
  }

  bool ParseNumber() {
    uint64_t features = 0;
    if (Peek() == '-') {
      EOF_COV(ctx);
      features |= 1;
      ++pos;
    }
    size_t digits = 0;
    while (!Done() && isdigit(static_cast<unsigned char>(Peek())) != 0) {
      ++pos;
      ++digits;
    }
    if (digits == 0) {
      EOF_COV(ctx);
      error = kErrBadNumber;
      return false;
    }
    if (!Done() && Peek() == '.') {
      EOF_COV(ctx);
      features |= 2;
      ++pos;
      size_t frac = 0;
      while (!Done() && isdigit(static_cast<unsigned char>(Peek())) != 0) {
        ++pos;
        ++frac;
      }
      if (frac == 0) {
        EOF_COV(ctx);
        error = kErrBadNumber;
        return false;
      }
    }
    if (!Done() && (Peek() == 'e' || Peek() == 'E')) {
      EOF_COV(ctx);
      features |= 4;
      ++pos;
      if (!Done() && (Peek() == '+' || Peek() == '-')) {
        features |= 8;
        ++pos;
      }
      size_t exp = 0;
      while (!Done() && isdigit(static_cast<unsigned char>(Peek())) != 0) {
        ++pos;
        ++exp;
      }
      if (exp == 0) {
        EOF_COV(ctx);
        error = kErrBadNumber;
        return false;
      }
    }
    EOF_COV(ctx);
    EOF_COV_BUCKET(ctx, features);                    // sign/frac/exp/signed-exp combos
    EOF_COV_BUCKET(ctx, CovSizeClass(digits) + 16);   // magnitude class
    return true;
  }

  bool ParseValue(int depth) {
    ctx.ConsumeCycles(kListOpCycles * 2);
    EOF_COV_BUCKET(ctx, static_cast<uint64_t>(depth) + 8);  // nesting-depth row
    if (depth > kMaxDepth) {
      EOF_COV(ctx);
      error = kErrDepth;
      return false;
    }
    SkipWs();
    if (Done()) {
      error = kErrSyntax;
      return false;
    }
    ++nodes;
    char c = Peek();
    if (c == '{') {
      EOF_COV(ctx);
      ++pos;
      SkipWs();
      if (!Done() && Peek() == '}') {
        EOF_COV(ctx);
        ++pos;
        return true;
      }
      uint64_t keys = 0;
      for (;;) {
        SkipWs();
        if (Done() || Peek() != '"') {
          EOF_COV(ctx);
          error = kErrSyntax;
          return false;
        }
        if (!ParseString()) {
          return false;
        }
        SkipWs();
        if (Done() || Peek() != ':') {
          EOF_COV(ctx);
          error = kErrSyntax;
          return false;
        }
        ++pos;
        if (!ParseValue(depth + 1)) {
          return false;
        }
        ++keys;
        SkipWs();
        if (!Done() && Peek() == ',') {
          ++pos;
          continue;
        }
        if (!Done() && Peek() == '}') {
          EOF_COV(ctx);
          max_object_keys = std::max(max_object_keys, keys);
          EOF_COV_BUCKET(ctx, keys);  // object-width class
          ++pos;
          return true;
        }
        EOF_COV(ctx);
        error = kErrSyntax;
        return false;
      }
    }
    if (c == '[') {
      EOF_COV(ctx);
      ++pos;
      SkipWs();
      if (!Done() && Peek() == ']') {
        EOF_COV(ctx);
        ++pos;
        return true;
      }
      uint64_t width = 0;
      for (;;) {
        if (!ParseValue(depth + 1)) {
          return false;
        }
        ++width;
        SkipWs();
        if (!Done() && Peek() == ',') {
          ++pos;
          continue;
        }
        if (!Done() && Peek() == ']') {
          EOF_COV(ctx);
          max_array_width = std::max(max_array_width, width);
          EOF_COV_BUCKET(ctx, width + 8);  // array-width class
          ++pos;
          return true;
        }
        EOF_COV(ctx);
        error = kErrSyntax;
        return false;
      }
    }
    if (c == '"') {
      EOF_COV(ctx);
      return ParseString();
    }
    if (c == 't') {
      EOF_COV(ctx);
      if (!Literal("true")) {
        error = kErrSyntax;
        return false;
      }
      return true;
    }
    if (c == 'f') {
      EOF_COV(ctx);
      if (!Literal("false")) {
        error = kErrSyntax;
        return false;
      }
      return true;
    }
    if (c == 'n') {
      EOF_COV(ctx);
      if (!Literal("null")) {
        error = kErrSyntax;
        return false;
      }
      return true;
    }
    if (c == '-' || isdigit(static_cast<unsigned char>(c)) != 0) {
      EOF_COV(ctx);
      return ParseNumber();
    }
    EOF_COV(ctx);
    error = kErrSyntax;
    return false;
  }
};

}  // namespace

int64_t JsonParse(KernelContext& ctx, AppsState& state, const std::string& text) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  if (text.empty()) {
    EOF_COV(ctx);
    ++state.json_parse_errors;
    return kErrEmpty;
  }
  ctx.ConsumeCycles(kCopyPerByteCycles * text.size());
  Parser parser{ctx, text};
  if (!parser.ParseValue(0)) {
    ++state.json_parse_errors;
    return parser.error;
  }
  parser.SkipWs();
  if (!parser.Done()) {
    EOF_COV(ctx);
    ++state.json_parse_errors;
    return kErrTrailing;
  }
  EOF_COV(ctx);
  EOF_COV_BUCKET(ctx, CovSizeClass(static_cast<uint64_t>(parser.nodes)));
  EOF_COV_BUCKET(ctx, parser.escapes + 8);                        // escape population
  EOF_COV_BUCKET(ctx, CovSizeClass(parser.strings) + 16);         // string population
  ++state.json_docs_parsed;
  return parser.nodes;
}

}  // namespace apps
}  // namespace eof
