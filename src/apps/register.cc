// API registration for the app-level targets. Two tiers of entry points:
//   * raw byte entries (http_handle_raw, json_parse) — what byte-buffer fuzzers drive, and
//   * structured/pseudo entries (http_request, syz_json_doc) — the API-aware specs EOF
//     generates from, which assemble well-formed inputs before hitting the same parsers.

#include <algorithm>

#include "src/apps/apps.h"
#include "src/common/strings.h"
#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"

namespace eof {
namespace apps {
namespace {

EOF_COV_MODULE("apps/http");

int64_t ApiServerStart(KernelContext& ctx, AppsState& state,
                       const std::vector<ArgValue>& args) {
  return HttpServerStart(ctx, state, static_cast<uint16_t>(args[0].scalar));
}

int64_t ApiHandleRaw(KernelContext& ctx, AppsState& state,
                     const std::vector<ArgValue>& args) {
  return HttpHandleRaw(ctx, state, args[0].AsString());
}

// Structured request builder: assembles a syntactically valid request from typed pieces,
// then feeds the same parser. This is what "API-aware" buys: preconditions (CRLF framing,
// content-length arithmetic) hold by construction, so deeper handlers execute.
int64_t ApiRequest(KernelContext& ctx, AppsState& state, const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles / 2);
  EOF_COV(ctx);
  static const char* kMethods[] = {"GET", "POST", "PUT", "DELETE", "HEAD", "PATCH"};
  uint64_t method_index = args[0].scalar;
  std::string method =
      kMethods[method_index < 6 ? method_index : 0];
  std::string path = args[1].AsString();
  if (path.empty() || path[0] != '/') {
    path = "/" + path;
  }
  std::string query = args[2].AsString();
  bool with_auth = args[3].scalar != 0;
  const std::vector<uint8_t>& body_bytes = args[4].bytes;
  std::string body(body_bytes.begin(), body_bytes.end());
  bool chunked = args[5].scalar != 0;

  std::string raw = method + " " + path;
  if (!query.empty()) {
    raw += "?" + query;
  }
  raw += " HTTP/1.1\r\nhost: device.local\r\n";
  if (with_auth) {
    raw += "authorization: Bearer " + state.auth_token + "\r\n";
  }
  if (chunked && !body.empty()) {
    raw += "transfer-encoding: chunked\r\n\r\n";
    raw += StrFormat("%zx\r\n", body.size()) + body + "\r\n0\r\n\r\n";
  } else {
    raw += StrFormat("content-length: %zu\r\n\r\n", body.size()) + body;
  }
  return HttpHandleRaw(ctx, state, raw);
}

int64_t ApiJsonParse(KernelContext& ctx, AppsState& state,
                     const std::vector<ArgValue>& args) {
  return JsonParse(ctx, state, args[0].AsString());
}

// Pseudo-syscall: emit a well-formed document of the requested shape and parse it —
// covering the deep happy paths random bytes rarely assemble.
int64_t ApiSyzJsonDoc(KernelContext& ctx, AppsState& state,
                      const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles / 2);
  EOF_COV(ctx);
  // Typical generated documents stay shallow; deep nesting only arrives through evolved
  // raw inputs on the json_parse path.
  uint64_t depth = std::min<uint64_t>(args[0].scalar, 4);
  uint64_t width = std::min<uint64_t>(args[1].scalar, 8);
  uint64_t flavor = args[2].scalar % 4;
  std::string doc;
  for (uint64_t d = 0; d < depth; ++d) {
    doc += (d % 2 == 0) ? "{\"k\":" : "[";
  }
  switch (flavor) {
    case 0:
      doc += "-12.5e+3";
      break;
    case 1:
      doc += "\"v\\u0041\\n\"";
      break;
    case 2:
      doc += "true";
      break;
    default:
      doc += "null";
      break;
  }
  for (uint64_t w = 1; w < width; ++w) {
    doc += (flavor % 2 == 0) ? ",0" : ",false";
  }
  for (uint64_t d = depth; d > 0; --d) {
    doc += (d % 2 == 1) ? "}" : "]";
  }
  return JsonParse(ctx, state, doc);
}

}  // namespace

Status RegisterAppApis(ApiRegistry& registry, AppsState& state) {
  AppsState* s = &state;
  auto add = [&](ApiSpec spec, auto fn, bool pseudo = false) -> Status {
    spec.is_pseudo = pseudo;
    spec.extended_spec = pseudo;
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "http_server_start";
    spec.subsystem = "http";
    spec.doc = "bind the HTTP server to a port";
    spec.args = {ArgSpec::Scalar("port", 16, 0, 65535)};
    RETURN_IF_ERROR(add(std::move(spec), ApiServerStart));
  }
  {
    ApiSpec spec;
    spec.name = "http_handle_raw";
    spec.subsystem = "http";
    spec.doc = "feed raw request bytes to the server";
    spec.args = {ArgSpec::Buffer("request", 0, 1024)};
    RETURN_IF_ERROR(add(std::move(spec), ApiHandleRaw));
  }
  {
    ApiSpec spec;
    spec.name = "http_request";
    spec.subsystem = "http";
    spec.doc = "issue a structured request (method, path, query, auth, body, chunked)";
    spec.args = {ArgSpec::Flags("method", {0, 1, 2, 3, 4, 5}),
                 ArgSpec::String("path", {"/", "/index.html", "/api/status", "/api/led",
                                          "/upload", "/files/a.txt", "/files/../etc"}),
                 ArgSpec::String("query", {"", "verbose=1", "v=0&x=2"}),
                 ArgSpec::Scalar("with_auth", 8, 0, 1), ArgSpec::Buffer("body", 0, 512),
                 ArgSpec::Scalar("chunked", 8, 0, 1)};
    RETURN_IF_ERROR(add(std::move(spec), ApiRequest));
  }
  {
    ApiSpec spec;
    spec.name = "json_parse";
    spec.subsystem = "json";
    spec.doc = "parse a JSON document from raw bytes";
    spec.args = {ArgSpec::Buffer("doc", 0, 512)};
    RETURN_IF_ERROR(add(std::move(spec), ApiJsonParse));
  }
  {
    ApiSpec spec;
    spec.name = "syz_json_doc";
    spec.subsystem = "json";
    spec.doc = "generate a well-formed document of a given shape and parse it";
    spec.args = {ArgSpec::Scalar("depth", 8, 0, 16), ArgSpec::Scalar("width", 8, 0, 8),
                 ArgSpec::Scalar("flavor", 8, 0, 3)};
    RETURN_IF_ERROR(add(std::move(spec), ApiSyzJsonDoc, /*pseudo=*/true));
  }
  return OkStatus();
}

}  // namespace apps
}  // namespace eof
