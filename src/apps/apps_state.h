// State of the application-level fuzzing targets (Table 4 / Figure 8): an HTTP server and
// a JSON component running as FreeRTOS applications.

#ifndef SRC_APPS_APPS_STATE_H_
#define SRC_APPS_APPS_STATE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace eof {
namespace apps {

struct AppsState {
  // HTTP server.
  bool server_started = false;
  uint16_t server_port = 0;
  bool led_on = false;
  uint64_t uploads_bytes = 0;
  uint32_t requests_handled = 0;
  uint32_t errors_returned = 0;
  std::string auth_token = "tok-3fe1";

  // JSON component statistics.
  uint32_t json_docs_parsed = 0;
  uint32_t json_parse_errors = 0;
};

}  // namespace apps
}  // namespace eof

#endif  // SRC_APPS_APPS_STATE_H_
