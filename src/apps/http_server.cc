// Embedded HTTP server application (the http_server target of Table 4).
//
// One raw entry point parses request bytes — request line, headers, routing, query
// strings, auth, bodies, chunked transfer encoding — so byte-level fuzzers (GDBFuzz/SHIFT)
// and API-aware fuzzers (EOF) exercise the same code with very different effectiveness:
// random buffers die in the request-line parser, while structured requests reach routing
// and handlers.

#include <algorithm>

#include "src/apps/apps.h"
#include "src/common/strings.h"
#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"

namespace eof {
namespace apps {
namespace {

EOF_COV_MODULE("apps/http");

// HTTP status codes the server produces.
constexpr int64_t kOk = 200;
constexpr int64_t kCreated = 201;
constexpr int64_t kNoContent = 204;
constexpr int64_t kBadRequest = 400;
constexpr int64_t kUnauthorized = 401;
constexpr int64_t kNotFound = 404;
constexpr int64_t kMethodNotAllowed = 405;
constexpr int64_t kPayloadTooLarge = 413;
constexpr int64_t kUriTooLong = 414;
constexpr int64_t kServerError = 500;
constexpr int64_t kNotStarted = -1;

struct Request {
  std::string method;
  std::string path;
  std::string query;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool chunked = false;
  size_t content_length = 0;
  bool has_content_length = false;
};

// Parses the request line and headers; returns a status code (kOk when parse succeeded).
int64_t ParseRequest(KernelContext& ctx, const std::string& raw, Request* out) {
  ctx.ConsumeCycles(kCopyPerByteCycles * raw.size());
  size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos) {
    EOF_COV(ctx);
    return kBadRequest;
  }
  std::string request_line = raw.substr(0, line_end);
  std::vector<std::string> parts = StrSplit(request_line, ' ');
  EOF_COV_BUCKET(ctx, parts.size());  // tokenizer row
  if (parts.size() != 3) {
    EOF_COV(ctx);
    return kBadRequest;
  }
  out->method = parts[0];
  std::string target = parts[1];
  const std::string& version = parts[2];
  // The method table compare is a byte loop in the embedded build: every matched prefix
  // byte is its own edge, the gradient byte-level fuzzers climb.
  {
    size_t best_prefix = 0;
    for (const char* known : {"GET", "POST", "PUT", "DELETE", "HEAD"}) {
      size_t match = 0;
      while (match < out->method.size() && known[match] != '\0' &&
             out->method[match] == known[match]) {
        ++match;
      }
      best_prefix = std::max(best_prefix, match);
      ctx.ConsumeCycles(kListOpCycles);
    }
    EOF_COV_BUCKET(ctx, best_prefix + 8);
  }
  if (out->method != "GET" && out->method != "POST" && out->method != "PUT" &&
      out->method != "DELETE" && out->method != "HEAD") {
    EOF_COV(ctx);
    return kMethodNotAllowed;
  }
  EOF_COV(ctx);
  {
    const char* proto = "HTTP/1.";
    size_t match = 0;
    while (match < version.size() && proto[match] != '\0' && version[match] == proto[match]) {
      ++match;
    }
    EOF_COV_BUCKET(ctx, match + 16);  // version byte-compare gradient
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    EOF_COV(ctx);
    return kBadRequest;
  }
  if (target.empty() || target[0] != '/') {
    EOF_COV(ctx);
    return kBadRequest;
  }
  if (target.size() > 256) {
    EOF_COV(ctx);
    return kUriTooLong;
  }
  size_t query_pos = target.find('?');
  if (query_pos != std::string::npos) {
    EOF_COV(ctx);
    out->query = target.substr(query_pos + 1);
    target = target.substr(0, query_pos);
  }
  out->path = target;

  // Header block.
  size_t cursor = line_end + 2;
  while (cursor < raw.size()) {
    size_t next = raw.find("\r\n", cursor);
    if (next == std::string::npos) {
      EOF_COV(ctx);
      return kBadRequest;  // unterminated header
    }
    if (next == cursor) {
      cursor += 2;  // blank line: end of headers
      break;
    }
    std::string line = raw.substr(cursor, next - cursor);
    cursor = next + 2;
    size_t colon = line.find(':');
    if (colon == std::string::npos) {
      EOF_COV(ctx);
      return kBadRequest;
    }
    std::string name(StripWhitespace(line.substr(0, colon)));
    std::string value(StripWhitespace(line.substr(colon + 1)));
    std::transform(name.begin(), name.end(), name.begin(),
                   [](unsigned char c) { return static_cast<char>(tolower(c)); });
    if (name == "content-length") {
      EOF_COV(ctx);
      out->has_content_length = true;
      out->content_length = 0;
      for (char c : value) {
        if (c < '0' || c > '9') {
          EOF_COV(ctx);
          return kBadRequest;
        }
        out->content_length = out->content_length * 10 + static_cast<size_t>(c - '0');
        if (out->content_length > 1 << 20) {
          EOF_COV(ctx);
          return kPayloadTooLarge;
        }
      }
    } else if (name == "transfer-encoding") {
      EOF_COV(ctx);
      out->chunked = Contains(value, "chunked");
    }
    out->headers.emplace_back(name, value);
    if (out->headers.size() > 32) {
      EOF_COV(ctx);
      return kBadRequest;
    }
  }

  // Body.
  std::string rest = raw.substr(std::min(cursor, raw.size()));
  if (out->chunked) {
    EOF_COV(ctx);
    // Chunked decode: <hex-len>\r\n<bytes>\r\n ... 0\r\n\r\n
    uint64_t chunks = 0;
    size_t pos = 0;
    while (pos < rest.size()) {
      size_t eol = rest.find("\r\n", pos);
      if (eol == std::string::npos) {
        EOF_COV(ctx);
        return kBadRequest;
      }
      size_t chunk_len = 0;
      for (size_t i = pos; i < eol; ++i) {
        char c = static_cast<char>(tolower(static_cast<unsigned char>(rest[i])));
        int digit;
        if (c >= '0' && c <= '9') {
          digit = c - '0';
        } else if (c >= 'a' && c <= 'f') {
          digit = c - 'a' + 10;
        } else {
          EOF_COV(ctx);
          return kBadRequest;
        }
        chunk_len = chunk_len * 16 + static_cast<size_t>(digit);
        if (chunk_len > 1 << 16) {
          EOF_COV(ctx);
          return kPayloadTooLarge;
        }
      }
      pos = eol + 2;
      if (chunk_len == 0) {
        EOF_COV(ctx);
        EOF_COV_BUCKET(ctx, chunks + 14);  // chunk-count class
        break;  // terminal chunk
      }
      ++chunks;
      if (pos + chunk_len > rest.size()) {
        EOF_COV(ctx);
        return kBadRequest;
      }
      out->body.append(rest, pos, chunk_len);
      pos += chunk_len + 2;  // skip trailing CRLF
    }
  } else if (out->has_content_length) {
    EOF_COV(ctx);
    if (rest.size() < out->content_length) {
      EOF_COV(ctx);
      return kBadRequest;  // truncated body
    }
    out->body = rest.substr(0, out->content_length);
  }
  return kOk;
}

uint64_t MethodIndex(const std::string& method) {
  const char* kMethods[] = {"GET", "POST", "PUT", "DELETE", "HEAD"};
  for (uint64_t i = 0; i < 5; ++i) {
    if (method == kMethods[i]) {
      return i;
    }
  }
  return 5;
}

uint64_t RouteIndex(const std::string& path) {
  if (path == "/" || path == "/index.html") {
    return 0;
  }
  if (path == "/api/status") {
    return 1;
  }
  if (path == "/api/led") {
    return 2;
  }
  if (path == "/upload") {
    return 3;
  }
  if (path.rfind("/files/", 0) == 0) {
    return 4;
  }
  return 5;
}

// Routes a parsed request; returns the HTTP status.
int64_t Route(KernelContext& ctx, AppsState& state, const Request& request) {
  ctx.ConsumeCycles(kListOpCycles * 8);
  // Dispatch-table row: every (route, method) pair is its own handler edge.
  EOF_COV_BUCKET(ctx, RouteIndex(request.path) * 4 + MethodIndex(request.method) % 4);
  if (request.path == "/" || request.path == "/index.html") {
    EOF_COV(ctx);
    if (request.method != "GET" && request.method != "HEAD") {
      EOF_COV(ctx);
      return kMethodNotAllowed;
    }
    return kOk;
  }
  if (request.path == "/api/status") {
    EOF_COV(ctx);
    if (!request.query.empty()) {
      EOF_COV(ctx);
      // ?verbose=1 style query parsing.
      uint64_t params = 0;
      for (const std::string& kv : StrSplit(request.query, '&')) {
        ++params;
        if (StartsWith(kv, "verbose=")) {
          EOF_COV(ctx);
        }
        if (Contains(kv, "%")) {
          EOF_COV(ctx);  // percent-decode path
        }
      }
      EOF_COV_BUCKET(ctx, params + 12);  // query-arity class
    }
    return kOk;
  }
  if (request.path == "/api/led") {
    EOF_COV(ctx);
    if (request.method != "POST") {
      EOF_COV(ctx);
      return kMethodNotAllowed;
    }
    // Requires auth.
    bool authed = false;
    for (const auto& [name, value] : request.headers) {
      if (name == "authorization" && Contains(value, state.auth_token)) {
        authed = true;
      }
    }
    if (!authed) {
      EOF_COV(ctx);
      return kUnauthorized;
    }
    EOF_COV(ctx);
    if (request.body == "on") {
      EOF_COV(ctx);
      state.led_on = true;
      return kNoContent;
    }
    if (request.body == "off") {
      EOF_COV(ctx);
      state.led_on = false;
      return kNoContent;
    }
    return kBadRequest;
  }
  if (request.path == "/upload") {
    EOF_COV(ctx);
    if (request.method != "PUT" && request.method != "POST") {
      EOF_COV(ctx);
      return kMethodNotAllowed;
    }
    if (request.body.empty()) {
      EOF_COV(ctx);
      return kBadRequest;
    }
    if (request.body.size() > 4096) {
      EOF_COV(ctx);
      return kPayloadTooLarge;
    }
    EOF_COV(ctx);
    state.uploads_bytes += request.body.size();
    return kCreated;
  }
  if (StartsWith(request.path, "/files/")) {
    EOF_COV(ctx);
    std::string name = request.path.substr(7);
    if (Contains(name, "..")) {
      EOF_COV(ctx);
      return kBadRequest;  // traversal rejected
    }
    if (request.method == "DELETE") {
      EOF_COV(ctx);
      return kNoContent;
    }
    EOF_COV(ctx);
    return kNotFound;
  }
  EOF_COV(ctx);
  return kNotFound;
}

}  // namespace

int64_t HttpServerStart(KernelContext& ctx, AppsState& state, uint16_t port) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  if (port == 0) {
    EOF_COV(ctx);
    return kBadRequest;
  }
  if (state.server_started) {
    EOF_COV(ctx);
    return kServerError;  // already bound
  }
  EOF_COV(ctx);
  state.server_started = true;
  state.server_port = port;
  return kOk;
}

int64_t HttpHandleRaw(KernelContext& ctx, AppsState& state, const std::string& raw) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  if (!state.server_started) {
    EOF_COV(ctx);
    return kNotStarted;
  }
  Request request;
  int64_t parse_status = ParseRequest(ctx, raw, &request);
  if (parse_status != kOk) {
    ++state.errors_returned;
    return parse_status;
  }
  EOF_COV(ctx);
  EOF_COV_BUCKET(ctx, request.headers.size());            // header-count class
  EOF_COV_BUCKET(ctx, CovSizeClass(request.body.size()) + 10);  // body size class
  int64_t status = Route(ctx, state, request);
  EOF_COV_BUCKET(ctx, static_cast<uint64_t>(status) % 24);      // status-code row
  ++state.requests_handled;
  if (status >= 400) {
    ++state.errors_returned;
  }
  return status;
}

}  // namespace apps
}  // namespace eof
