// Application-level fuzzing targets: an HTTP server and a JSON component built on the
// FreeRTOS target (Table 4 / Figure 8 workloads). RegisterAppApis() wires them into an
// ApiRegistry; HttpHandleRaw/JsonParse are the byte-level entry points byte-buffer
// fuzzers (GDBFuzz/SHIFT) hit directly.

#ifndef SRC_APPS_APPS_H_
#define SRC_APPS_APPS_H_

#include <string>

#include "src/apps/apps_state.h"
#include "src/common/status.h"
#include "src/kernel/api.h"

namespace eof {

class KernelContext;

namespace apps {

// HTTP server entry points. Return HTTP status codes (or -1 when not started).
int64_t HttpServerStart(KernelContext& ctx, AppsState& state, uint16_t port);
int64_t HttpHandleRaw(KernelContext& ctx, AppsState& state, const std::string& raw);

// JSON component: parses a document, returns the node count on success or a negative
// parse-error code.
int64_t JsonParse(KernelContext& ctx, AppsState& state, const std::string& text);

// Registers the app-level API surface (http_* and json_* calls, structured + raw).
Status RegisterAppApis(ApiRegistry& registry, AppsState& state);

}  // namespace apps
}  // namespace eof

#endif  // SRC_APPS_APPS_H_
