// Simulated UART transmit path. Target code writes log lines here; the host drains them
// through DebugPort::DrainUart() and feeds them to the log monitor (§4.5.2).
//
// Real boards lose UART output when the core wedges before the FIFO drains; we model that
// with a bounded buffer plus an explicit Freeze() that the fault path may invoke, after
// which writes are dropped (the "UART logs may vanish after a fault" behaviour from §3.2).

#ifndef SRC_HW_UART_H_
#define SRC_HW_UART_H_

#include <cstddef>
#include <string>

namespace eof {

class Uart {
 public:
  explicit Uart(size_t capacity_bytes) : capacity_(capacity_bytes) {}

  // Appends a line (newline added) unless frozen or over capacity; excess is dropped and
  // counted so tests can assert on loss.
  void WriteLine(const std::string& line);

  // Appends raw bytes with the same drop rules.
  void Write(const std::string& data);

  // Returns and clears all buffered output.
  std::string Drain();

  // Stops accepting further output (core wedged mid-transmission).
  void Freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  // Clears buffer and unfreezes (power-on reset).
  void Reset();

  size_t dropped_bytes() const { return dropped_; }
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  size_t capacity_;
  std::string buffer_;
  bool frozen_ = false;
  size_t dropped_ = 0;
};

}  // namespace eof

#endif  // SRC_HW_UART_H_
