#include "src/hw/flash.h"
#include <cstddef>

#include "src/common/strings.h"

namespace eof {

const Partition* PartitionTable::Find(const std::string& name) const {
  for (const Partition& part : partitions) {
    if (part.name == name) {
      return &part;
    }
  }
  return nullptr;
}

Status PartitionTable::Validate(uint64_t flash_size) const {
  for (size_t i = 0; i < partitions.size(); ++i) {
    const Partition& part = partitions[i];
    if (part.size == 0) {
      return InvalidArgumentError(StrFormat("partition '%s' has zero size", part.name.c_str()));
    }
    if (part.offset + part.size > flash_size) {
      return OutOfRangeError(
          StrFormat("partition '%s' exceeds flash size", part.name.c_str()));
    }
    for (size_t j = i + 1; j < partitions.size(); ++j) {
      const Partition& other = partitions[j];
      bool overlap = part.offset < other.offset + other.size &&
                     other.offset < part.offset + part.size;
      if (overlap) {
        return InvalidArgumentError(StrFormat("partitions '%s' and '%s' overlap",
                                              part.name.c_str(), other.name.c_str()));
      }
    }
  }
  return OkStatus();
}

Status Flash::Write(uint64_t offset, const std::vector<uint8_t>& data) {
  if (offset + data.size() > storage_.size()) {
    return OutOfRangeError(StrFormat("flash write [%llu, %llu) out of bounds",
                                     static_cast<unsigned long long>(offset),
                                     static_cast<unsigned long long>(offset + data.size())));
  }
  std::copy(data.begin(), data.end(), storage_.begin() + static_cast<std::ptrdiff_t>(offset));
  ++write_count_;
  return OkStatus();
}

Result<std::vector<uint8_t>> Flash::Read(uint64_t offset, uint64_t size) const {
  if (offset + size > storage_.size()) {
    return OutOfRangeError(StrFormat("flash read [%llu, %llu) out of bounds",
                                     static_cast<unsigned long long>(offset),
                                     static_cast<unsigned long long>(offset + size)));
  }
  return std::vector<uint8_t>(storage_.begin() + static_cast<std::ptrdiff_t>(offset),
                              storage_.begin() + static_cast<std::ptrdiff_t>(offset + size));
}

void Flash::MassErase() {
  std::fill(storage_.begin(), storage_.end(), 0xff);
  ++write_count_;
}

}  // namespace eof
