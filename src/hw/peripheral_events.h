// Peripheral event injection — the extension the paper's §6 proposes ("we can introduce
// lightweight peripheral models to drive interrupt paths and I/O error handling ...
// hardware event injection such as GPIO toggles or serial input").
//
// The host injects events through the debug tooling (modelling a bench signal generator
// wired to the board); the board queues them; the agent drains the queue between calls
// and dispatches each event to the OS's interrupt-path handler.

#ifndef SRC_HW_PERIPHERAL_EVENTS_H_
#define SRC_HW_PERIPHERAL_EVENTS_H_

#include <cstdint>

namespace eof {

enum class PeripheralEventKind : uint8_t {
  kGpioEdge = 0,    // value = line number | (level << 8)
  kSerialRx = 1,    // value = received byte
  kTimerTick = 2,   // value = timer channel
  kCanFrame = 3,    // value = frame id
};

const char* PeripheralEventKindName(PeripheralEventKind kind);

struct PeripheralEvent {
  PeripheralEventKind kind = PeripheralEventKind::kGpioEdge;
  uint32_t value = 0;
};

}  // namespace eof

#endif  // SRC_HW_PERIPHERAL_EVENTS_H_
