// A firmware image: partition payloads (with boot-verifiable checksums), a symbol table,
// instrumentation options, and the factory producing the executable firmware object.
//
// The image plays the role of the built ELF/bin in the paper: the host analyses its memory
// layout (partition table) for restoration, looks up symbols to place breakpoints, flashes
// its partition payloads over the debug port, and accounts its size for the §5.5.1 memory-
// overhead measurement.

#ifndef SRC_HW_IMAGE_H_
#define SRC_HW_IMAGE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/hw/firmware.h"
#include "src/hw/flash.h"
#include "src/hw/symbols.h"

namespace eof {

// Which modules get SanCov-style instrumentation compiled in. `module_filter` empty means
// "instrument everything"; Table 4 confines instrumentation to {"apps/http", "apps/json"}.
struct InstrumentationOptions {
  bool enabled = true;
  std::vector<std::string> module_filter;
  // SHIFT-style semihosting delivery: each instrumentation event traps to the host
  // debugger (expensive) instead of buffering in RAM.
  bool semihost = false;

  bool Covers(const std::string& module) const {
    if (!enabled) {
      return false;
    }
    if (module_filter.empty()) {
      return true;
    }
    for (const std::string& allowed : module_filter) {
      if (module.rfind(allowed, 0) == 0) {
        return true;
      }
    }
    return false;
  }
};

class FirmwareImage;
using FirmwareFactory = std::function<std::unique_ptr<Firmware>(const FirmwareImage&)>;

// Code layout of one instrumentable module. Every coverage site in the module maps to a
// synthetic basic-block address in [base, base + bb_count * kBasicBlockStride); GDBFuzz-
// style tools plant hardware breakpoints on these addresses (their static analysis step).
struct ModuleLayout {
  std::string module;
  uint64_t base = 0;
  uint64_t bb_count = 0;
};

inline constexpr uint64_t kBasicBlockStride = 16;

class FirmwareImage {
 public:
  FirmwareImage() = default;

  // --- build-time population (used by core/image_builder) ---

  void set_os_name(std::string name) { os_name_ = std::move(name); }
  void set_factory(FirmwareFactory factory) { factory_ = std::move(factory); }
  void set_instrumentation(InstrumentationOptions opts) { instr_ = std::move(opts); }
  void set_size_bytes(uint64_t size) { size_bytes_ = size; }
  void set_instrumented_sites(uint64_t sites) { instrumented_sites_ = sites; }

  // Declares a partition and generates its payload: a deterministic pseudo-binary body of
  // `body_bytes` derived from (name, seed), wrapped in a [magic|len|crc] header that the
  // boot ROM validates. Fails if the payload exceeds the partition size.
  Status AddPartition(const std::string& name, uint64_t offset, uint64_t part_size,
                      uint64_t body_bytes, uint64_t seed);

  // Declares a partition with no payload (mutable data regions like NVS): listed in the
  // table, writable by the target, and exempt from boot validation.
  Status AddRawPartition(const std::string& name, uint64_t offset, uint64_t part_size);

  SymbolTable& mutable_symbols() { return symbols_; }

  // Sets where module code regions start (above the agent's program-point symbols).
  void set_code_base(uint64_t base) { code_base_ = base; }

  // Declares an instrumentable module with `bb_count` synthetic basic blocks, carving its
  // region out of the code space. Returns the assigned layout.
  Result<ModuleLayout> AddModule(const std::string& module, uint64_t bb_count);

  // --- host-side consumption ---

  const std::string& os_name() const { return os_name_; }
  const PartitionTable& partition_table() const { return table_; }
  const SymbolTable& symbols() const { return symbols_; }
  const InstrumentationOptions& instrumentation() const { return instr_; }
  uint64_t size_bytes() const { return size_bytes_; }
  uint64_t instrumented_sites() const { return instrumented_sites_; }

  // Pristine payload bytes for reflashing `partition`.
  Result<std::vector<uint8_t>> PayloadOf(const std::string& partition) const;

  std::unique_ptr<Firmware> Instantiate() const { return factory_(*this); }
  bool has_factory() const { return static_cast<bool>(factory_); }

  // Verifies that the bytes stored in `flash` for every partition parse as a valid payload
  // (magic + CRC). This is the boot ROM's integrity check; a kernel bug that scribbles on
  // flash makes it fail until the host reflashes.
  Status VerifyFlash(const Flash& flash) const;

  const std::vector<ModuleLayout>& modules() const { return modules_; }

  // Layout of `module`, or NotFoundError.
  Result<ModuleLayout> ModuleOf(const std::string& module) const;

  // Maps a coverage-site hash within `layout` to its synthetic basic-block address.
  static uint64_t BasicBlockAddress(const ModuleLayout& layout, uint64_t site_hash) {
    return layout.base + (site_hash % (layout.bb_count == 0 ? 1 : layout.bb_count)) *
                             kBasicBlockStride;
  }

  // True when `address` lies inside any module's basic-block region.
  bool InCodeSpace(uint64_t address) const;

  // Payload wire helpers (exposed for tests).
  static std::vector<uint8_t> MakePayload(const std::string& name, uint64_t seed,
                                          uint64_t body_bytes);
  static Status VerifyPayload(const std::vector<uint8_t>& bytes);

 private:
  std::string os_name_;
  PartitionTable table_;
  std::unordered_map<std::string, std::vector<uint8_t>> payloads_;
  SymbolTable symbols_;
  InstrumentationOptions instr_;
  FirmwareFactory factory_;
  uint64_t size_bytes_ = 0;
  uint64_t instrumented_sites_ = 0;
  uint64_t code_base_ = 0;
  uint64_t next_module_base_ = 0;
  std::vector<ModuleLayout> modules_;
};

}  // namespace eof

#endif  // SRC_HW_IMAGE_H_
