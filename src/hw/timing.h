// Virtual-time cost model for debug-link transactions and board lifecycle operations.
//
// Values approximate a JTAG adapter in the few-MHz TCK range driving OpenOCD: per-
// transaction round-trip latency dominates small transfers; bulk flash programming runs at
// tens of KB/s; a full reboot takes hundreds of milliseconds. The *ratios* between these
// costs (execution vs. reflash vs. timeout) shape the coverage curves in Figures 7/8, so
// they are centralized here and used consistently by all fuzzers under comparison.

#ifndef SRC_HW_TIMING_H_
#define SRC_HW_TIMING_H_

#include "src/common/vclock.h"

namespace eof {

// One debug transaction (halt, resume ack, register read...).
inline constexpr VirtualDuration kDebugTransactionCost = 150;  // 150 us

// Memory read/write over the link, per byte on top of the transaction cost.
inline constexpr VirtualDuration kDebugPerByteCost16 = 1;  // 1 us per 16 bytes

// Flash programming, per byte (erase+program, ~60 KB/s).
inline constexpr VirtualDuration kFlashPerByteCostNs = 5000;  // 5 us per byte

// Cold boot / reset to agent-ready.
inline constexpr VirtualDuration kRebootCost = 300 * kVirtualMillisecond;

// Warm core restore (snapshot fast path): halt the core, reset the peripherals and
// re-enter the agent without the boot ROM, flash verification, or OS cold-init
// walk. The RAM image itself is rewritten separately and pays the normal per-byte
// link cost on top of this.
inline constexpr VirtualDuration kWarmRestoreCost = 2 * kVirtualMillisecond;

// How long the host waits before declaring a connection timeout (watchdog #1).
inline constexpr VirtualDuration kLinkTimeout = 2 * kVirtualSecond;

// Semihosting trap cost (SHIFT baseline): each instrumentation event traps to the host.
inline constexpr VirtualDuration kSemihostTrapCost = 9000;  // ~9 ms per debugger-serviced BKPT

// How long a target-initiated instrumentation stall sits before the host services it.
// The end-of-case stop completes a continue-and-read rendezvous the host is already
// parked on, so it is serviced at plain transaction cost; a mid-case halt (coverage
// ring full) instead interrupts a host that is off servicing the rest of the farm and
// gets picked up by the background status poll — OpenOCD's default poll_period.
inline constexpr VirtualDuration kCovStallPollCost = 100 * kVirtualMillisecond;

// Target-assisted flash checksum (OpenOCD `flash verify_bank` style): the adapter runs a
// CRC routine on the target's flash controller and only the digest crosses the link, so
// the cost is one round trip plus target-side compute at ~85 MB/s.
inline constexpr VirtualDuration kChecksumPerKbCost = 12;  // 12 us per KiB hashed on-target

inline constexpr VirtualDuration DebugMemCost(uint64_t bytes) {
  return kDebugTransactionCost + bytes / 16 * kDebugPerByteCost16;
}

// One vectored batch (DebugPort::RunBatch): the queued ops share a single link round
// trip, mirroring OpenOCD's queued JTAG transfers — the fixed latency is charged once
// per batch and the payloads of every op pay only the per-byte transfer cost.
inline constexpr VirtualDuration DebugBatchCost(uint64_t total_bytes) {
  return kDebugTransactionCost + total_bytes / 16 * kDebugPerByteCost16;
}

inline constexpr VirtualDuration ChecksumCost(uint64_t bytes) {
  return kDebugTransactionCost + bytes / 1024 * kChecksumPerKbCost;
}

inline constexpr VirtualDuration FlashProgramCost(uint64_t bytes) {
  return kDebugTransactionCost + bytes * (kFlashPerByteCostNs / 1000);
}

}  // namespace eof

#endif  // SRC_HW_TIMING_H_
