// The host's only channel to the target: a JTAG/SWD-style debug port, equivalent to the
// OpenOCD + GDB/MI stack the paper drives (§4.3.1). Every operation costs virtual time per
// the src/hw/timing.h model, and every operation can time out — either because the link
// was severed (injected for watchdog tests) or because the target never booted. The fuzzer
// layers (src/core, src/baselines) are written strictly against this interface.

#ifndef SRC_HW_DEBUG_PORT_H_
#define SRC_HW_DEBUG_PORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/vclock.h"
#include "src/hw/board.h"
#include "src/hw/stop_info.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/metrics.h"

namespace eof {

// A point-in-time view over the port's `link.*` telemetry counters. The counters in
// the MetricsRegistry are the single source of truth; this struct only exists so
// callers can read the link ledger without naming metric strings.
struct DebugPortStats {
  uint64_t transactions = 0;  // link round trips (a committed batch counts once)
  uint64_t batches = 0;       // committed RunBatch / ContinueWithRead round trips
  uint64_t batched_ops = 0;   // ops carried inside those batches
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t timeouts = 0;
  uint64_t flash_bytes = 0;          // bytes actually programmed
  uint64_t flash_skipped_bytes = 0;  // bytes the delta-reflash cache proved unchanged
  uint64_t resets = 0;
  uint64_t warm_restores = 0;  // snapshot-path core restores (no boot ROM, no reflash)
};

// Reads the `link.*` counters out of a registry snapshot (per-board, diffed, or
// farm-merged — snapshots compose with Diff/Merge, so this replaces the old
// field-by-field Accumulate()).
DebugPortStats DebugPortStatsFromSnapshot(const telemetry::MetricsSnapshot& snapshot);

// One queued operation of a vectored debug-link batch (DebugPort::RunBatch). Ops are
// queued host-side and committed in one link round trip, like OpenOCD's queued JTAG
// transfers; read results land back in the op records on commit.
struct PortOp {
  enum class Kind : uint8_t {
    kRead,           // read `size` bytes at `address` (RAM or flash window) into `result`
    kWrite,          // write `data` at `address` (RAM window)
    kSubU32,         // saturating mem[address] -= LE u32 taken from an earlier read op's
                     // result (adapter-side read-modify-write; atomic w.r.t. the target)
    kSetBreakpoint,  // arm a breakpoint at `address`
  };

  Kind kind = Kind::kRead;
  uint64_t address = 0;
  uint64_t size = 0;            // kRead: byte count
  std::vector<uint8_t> data;    // kWrite: payload
  int operand_op = -1;          // kSubU32: index of the earlier kRead op in this batch
  uint64_t operand_offset = 0;  // kSubU32: byte offset of the LE u32 minuend in that read
  std::vector<uint8_t> result;  // kRead: filled on commit

  static PortOp Read(uint64_t address, uint64_t size) {
    PortOp op;
    op.kind = Kind::kRead;
    op.address = address;
    op.size = size;
    return op;
  }
  static PortOp Write(uint64_t address, std::vector<uint8_t> data) {
    PortOp op;
    op.kind = Kind::kWrite;
    op.address = address;
    op.data = std::move(data);
    return op;
  }
  static PortOp SubU32(uint64_t address, int operand_op, uint64_t operand_offset) {
    PortOp op;
    op.kind = Kind::kSubU32;
    op.address = address;
    op.operand_op = operand_op;
    op.operand_offset = operand_offset;
    return op;
  }
  static PortOp SetBp(uint64_t address) {
    PortOp op;
    op.kind = Kind::kSetBreakpoint;
    op.address = address;
    return op;
  }
};

class DebugPort {
 public:
  // The board must outlive the port. `registry` is where the port registers its
  // `link.*` counters; pass the board session's registry to fold link traffic into
  // that board's telemetry, or nullptr to let the port own a private registry.
  explicit DebugPort(Board* board, telemetry::MetricsRegistry* registry = nullptr);

  // Attaches to the target's debug unit; fails for boards without one (Table 1 boundary).
  Status Connect();
  void Disconnect() { attached_ = false; }
  bool attached() const { return attached_; }

  // Memory access by absolute address (flash or RAM window).
  Result<std::vector<uint8_t>> ReadMem(uint64_t address, uint64_t size);
  Status WriteMem(uint64_t address, const std::vector<uint8_t>& data);

  // Commits a vectored batch: every queued op executes in order against the target in
  // ONE link round trip (a single fixed-latency charge plus the per-byte cost of all
  // payloads — see DebugBatchCost in src/hw/timing.h). An empty batch is free. On a
  // severed or unresponsive link the whole batch fails with one timeout and NO op is
  // applied; once committing, an op error (bad window, breakpoint budget) stops the
  // batch with earlier ops already applied, like a partially-drained JTAG queue.
  Status RunBatch(std::vector<PortOp>* ops);

  // Target-assisted content checksum (FNV-1a over the flash or RAM window), computed
  // on the target side so only the digest crosses the link — the delta-reflash cache
  // uses this to prove a partition's on-flash bytes unchanged without reading them.
  Result<uint64_t> ChecksumMem(uint64_t address, uint64_t size);

  // Records `bytes` of flash programming skipped by the delta-reflash cache. Pure
  // host-side accounting: no link traffic, no virtual-time charge.
  void NoteFlashSkipped(uint64_t bytes) { flash_skipped_bytes_->Add(bytes); }

  // Flash-controller write counter: one status-word read through the memory AP (a
  // single fixed-latency transaction, no payload). The counter bumps on every flash
  // programming operation — host reflashes and target-side scribbles alike — so a
  // snapshot can prove "flash untouched since my last shadow audit" for the price
  // of one link round trip instead of re-checksumming every partition.
  Result<uint64_t> ReadFlashWriteCount();

  // Current program counter (watchdog #2 probes this around exec-continue).
  Result<uint64_t> ReadPC();

  // exec-continue: run the target until a stop condition.
  Result<StopInfo> Continue(uint64_t max_steps = Board::kDefaultQuantum);

  // exec-continue with a piggybacked post-stop memory read in the same round trip
  // (GDB/MI-style stop-event coalescing: the stop reply carries the frame). `out`
  // receives the window's bytes as they are after the stop condition latched.
  Result<StopInfo> ContinueWithRead(uint64_t address, uint64_t size,
                                    std::vector<uint8_t>* out,
                                    uint64_t max_steps = Board::kDefaultQuantum);

  // exec-continue with a prepended op plan AND a piggybacked post-stop read, all in
  // one round trip: the queued ops apply against the stopped target first (RunBatch
  // semantics — same op validation, same partially-applied-on-error behavior), then
  // the core is released and the read lands after the next stop latches. One
  // fixed-latency charge covers everything, which is what lets a double-buffered
  // coverage drain ride the next exec's continue for free. Severed-link semantics
  // match RunBatch: one timeout, nothing applied, the core not released.
  Result<StopInfo> ContinueWithPlan(std::vector<PortOp>* ops, uint64_t address,
                                    uint64_t size, std::vector<uint8_t>* out,
                                    uint64_t max_steps = Board::kDefaultQuantum);

  Status SetBreakpoint(uint64_t address);
  Status ClearBreakpoint(uint64_t address);
  void ClearAllBreakpoints();

  // Programs a partition payload at `offset` (the StateRestoration reflash path).
  Status FlashPartition(uint64_t offset, const std::vector<uint8_t>& data);

  // Hardware reset; the target re-runs its boot ROM against current flash contents.
  Status ResetTarget();

  // Warm core restore (the snapshot fast path): halts the core and re-enters the
  // agent without the boot ROM's power cycle, charging kWarmRestoreCost instead of
  // kRebootCost. RAM comes back zeroed and armed breakpoints survive; the caller is
  // expected to rewrite memory from its snapshot in one batched write. Fails like a
  // reset would on a severed link, and reports FailedPrecondition when the warm
  // boot parks the core (corrupted flash) — the caller must fall back to a full
  // reflash+reboot in that case.
  Status WarmRestoreCore();

  // Captured UART output since the last drain (the paper redirects this to stdout and the
  // log monitor greps it). Works even when the core is wedged — it is a separate wire.
  std::string DrainUart();

  // Hardware-breakpoint hits recorded by the debug unit since the last call.
  std::vector<uint64_t> TakeBreakpointHits();

  VirtualTime Now() const { return board_->clock().Now(); }

  // The target's memory map (the snapshot planner sizes its RAM read plan from it).
  const BoardSpec& spec() const { return board_->spec(); }

  // Samples the bench ammeter on the target's supply rail (§6 extension). This is a
  // separate physical channel: it works even when the debug link is severed.
  uint32_t SamplePowerMilliAmps() const { return board_->PowerDrawMilliAmps(); }

  // Injects a peripheral event (GPIO toggle, serial RX byte...) through the bench signal
  // generator attached to the target (§6 extension). Link-gated like everything else.
  Status InjectPeripheralEvent(const PeripheralEvent& event);

  // Severs / restores the physical link. While severed, every operation burns the link
  // timeout and fails — this is what watchdog #1 reacts to.
  void InjectLinkFailure(bool severed) { link_severed_ = severed; }
  bool link_severed() const { return link_severed_; }

  // Attaches the board session's flight recorder: every link operation (and every
  // drained UART line) is appended to its bounded rings. nullptr detaches. The
  // recorder must outlive the port (or be detached first) and recording follows the
  // port's own single-session thread confinement.
  void set_flight_recorder(telemetry::FlightRecorder* recorder) { flight_ = recorder; }
  telemetry::FlightRecorder* flight_recorder() const { return flight_; }

  // Current values of the port's `link.*` counters, materialized on demand.
  DebugPortStats stats() const;

  // The registry this port's counters live in (the board session's, or the private
  // fallback). Snapshot it to diff link traffic across a probe window.
  const telemetry::MetricsRegistry& registry() const { return *registry_; }

  // Escape hatch for tests and the campaign harness; production fuzzer code must not use.
  Board& board_for_test() { return *board_; }

 private:
  // Returns a TimeoutError (burning kLinkTimeout) when the link is severed or the target's
  // debug unit is unresponsive (never-booted cores hold the DAP in reset on our boards).
  Status CheckResponsive(bool needs_core);

  // Window-resolved access without cost/stat accounting (shared by single ops and
  // batch commit). Reads resolve against RAM or flash; writes only against RAM.
  Result<std::vector<uint8_t>> ReadWindow(uint64_t address, uint64_t size) const;
  Status WriteWindow(uint64_t address, const std::vector<uint8_t>& data);

  // Payload byte total of a queued plan (per-op accounting mirrors RunBatch's cost
  // table); sets *needs_core when any op requires a live core.
  static uint64_t BatchPlanBytes(const std::vector<PortOp>& ops, bool* needs_core);

  // Applies already-committed batch ops in order (flight notes + byte counters);
  // shared by RunBatch and ContinueWithPlan after their gate/cost accounting.
  Status ApplyBatchOps(std::vector<PortOp>* ops);

  // Appends one record to the attached flight recorder; no-op when detached.
  void Note(telemetry::FlightPortOp op, uint64_t address, uint64_t size, bool ok) {
    if (flight_ != nullptr) {
      flight_->RecordPortOp(Now(), op, address, size, ok);
    }
  }

  Board* board_;
  bool attached_ = false;
  bool link_severed_ = false;
  telemetry::FlightRecorder* flight_ = nullptr;

  std::unique_ptr<telemetry::MetricsRegistry> owned_registry_;  // set iff none was passed
  telemetry::MetricsRegistry* registry_;
  telemetry::Counter* transactions_;
  telemetry::Counter* batches_;
  telemetry::Counter* batched_ops_;
  telemetry::Counter* bytes_read_;
  telemetry::Counter* bytes_written_;
  telemetry::Counter* timeouts_;
  telemetry::Counter* flash_bytes_;
  telemetry::Counter* flash_skipped_bytes_;
  telemetry::Counter* resets_;
  telemetry::Counter* warm_restores_;
};

}  // namespace eof

#endif  // SRC_HW_DEBUG_PORT_H_
