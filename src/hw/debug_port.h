// The host's only channel to the target: a JTAG/SWD-style debug port, equivalent to the
// OpenOCD + GDB/MI stack the paper drives (§4.3.1). Every operation costs virtual time per
// the src/hw/timing.h model, and every operation can time out — either because the link
// was severed (injected for watchdog tests) or because the target never booted. The fuzzer
// layers (src/core, src/baselines) are written strictly against this interface.

#ifndef SRC_HW_DEBUG_PORT_H_
#define SRC_HW_DEBUG_PORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/vclock.h"
#include "src/hw/board.h"
#include "src/hw/stop_info.h"

namespace eof {

struct DebugPortStats {
  uint64_t transactions = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t timeouts = 0;
  uint64_t flash_bytes = 0;
  uint64_t resets = 0;
};

class DebugPort {
 public:
  // The board must outlive the port.
  explicit DebugPort(Board* board) : board_(board) {}

  // Attaches to the target's debug unit; fails for boards without one (Table 1 boundary).
  Status Connect();
  void Disconnect() { attached_ = false; }
  bool attached() const { return attached_; }

  // Memory access by absolute address (flash or RAM window).
  Result<std::vector<uint8_t>> ReadMem(uint64_t address, uint64_t size);
  Status WriteMem(uint64_t address, const std::vector<uint8_t>& data);

  // Current program counter (watchdog #2 probes this around exec-continue).
  Result<uint64_t> ReadPC();

  // exec-continue: run the target until a stop condition.
  Result<StopInfo> Continue(uint64_t max_steps = Board::kDefaultQuantum);

  Status SetBreakpoint(uint64_t address);
  Status ClearBreakpoint(uint64_t address);
  void ClearAllBreakpoints();

  // Programs a partition payload at `offset` (the StateRestoration reflash path).
  Status FlashPartition(uint64_t offset, const std::vector<uint8_t>& data);

  // Hardware reset; the target re-runs its boot ROM against current flash contents.
  Status ResetTarget();

  // Captured UART output since the last drain (the paper redirects this to stdout and the
  // log monitor greps it). Works even when the core is wedged — it is a separate wire.
  std::string DrainUart();

  // Hardware-breakpoint hits recorded by the debug unit since the last call.
  std::vector<uint64_t> TakeBreakpointHits();

  VirtualTime Now() const { return board_->clock().Now(); }

  // Samples the bench ammeter on the target's supply rail (§6 extension). This is a
  // separate physical channel: it works even when the debug link is severed.
  uint32_t SamplePowerMilliAmps() const { return board_->PowerDrawMilliAmps(); }

  // Injects a peripheral event (GPIO toggle, serial RX byte...) through the bench signal
  // generator attached to the target (§6 extension). Link-gated like everything else.
  Status InjectPeripheralEvent(const PeripheralEvent& event);

  // Severs / restores the physical link. While severed, every operation burns the link
  // timeout and fails — this is what watchdog #1 reacts to.
  void InjectLinkFailure(bool severed) { link_severed_ = severed; }
  bool link_severed() const { return link_severed_; }

  const DebugPortStats& stats() const { return stats_; }

  // Escape hatch for tests and the campaign harness; production fuzzer code must not use.
  Board& board_for_test() { return *board_; }

 private:
  // Returns a TimeoutError (burning kLinkTimeout) when the link is severed or the target's
  // debug unit is unresponsive (never-booted cores hold the DAP in reset on our boards).
  Status CheckResponsive(bool needs_core);

  Board* board_;
  bool attached_ = false;
  bool link_severed_ = false;
  DebugPortStats stats_;
};

}  // namespace eof

#endif  // SRC_HW_DEBUG_PORT_H_
