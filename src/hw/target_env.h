// The view of the board that firmware (kernel + agent) is allowed to touch. Firmware never
// sees the debug port — that is host-side only — but it can read/write RAM, drive the UART,
// program flash (which is how a buggy kernel corrupts its own image), consume cycles, and
// observe whether the host armed a breakpoint at the program point it just reached.

#ifndef SRC_HW_TARGET_ENV_H_
#define SRC_HW_TARGET_ENV_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/common/vclock.h"
#include "src/hw/board_spec.h"
#include "src/hw/flash.h"
#include "src/hw/peripheral_events.h"
#include "src/hw/uart.h"

namespace eof {

class TargetEnv {
 public:
  virtual ~TargetEnv() = default;

  virtual const BoardSpec& spec() const = 0;

  // RAM, addressed by offset from ram_base.
  virtual Status RamWrite(uint64_t offset, const std::vector<uint8_t>& data) = 0;
  virtual Result<std::vector<uint8_t>> RamRead(uint64_t offset, uint64_t size) const = 0;

  virtual Uart& uart() = 0;
  virtual Flash& flash() = 0;

  // Burns `cycles` core cycles: advances the virtual clock and the synthetic PC.
  virtual void ConsumeCycles(uint64_t cycles) = 0;

  // Marks arrival at the program point at `address` (updates PC). Returns true when the
  // host armed a breakpoint there, in which case the caller must suspend and return a
  // kBreakpoint StopInfo from Resume().
  virtual bool EnterProgramPoint(uint64_t address) = 0;

  // Word-sized RAM accessors for hot paths (coverage-ring writes); semantics match
  // RamWrite/RamRead of 4/8 bytes little-endian.
  virtual Status RamWriteU32(uint64_t offset, uint32_t value) = 0;
  virtual Status RamWriteU64(uint64_t offset, uint64_t value) = 0;
  virtual Result<uint32_t> RamReadU32(uint64_t offset) const = 0;

  // Reports execution of the synthetic basic block at `address` (coverage-site address
  // space) so armed hardware breakpoints register hits.
  virtual void OnBasicBlockExecuted(uint64_t address) = 0;

  virtual bool HasPeripheral(Peripheral peripheral) const = 0;

  // Pops the next pending injected peripheral event (bench signal generator), if any.
  virtual bool NextPeripheralEvent(PeripheralEvent* event) = 0;

  // Fault plumbing: the agent calls these when a kernel trap unwinds out of a call.
  // LatchFault freezes the PC at the OS exception handler; LatchHang freezes it in place.
  virtual void LatchFault(uint64_t handler_address, const std::string& detail) = 0;
  virtual void LatchHang(const std::string& detail) = 0;

  virtual VirtualTime Now() const = 0;
};

}  // namespace eof

#endif  // SRC_HW_TARGET_ENV_H_
