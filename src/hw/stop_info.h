// Halt/stop reporting shared between the board simulator and the debug port.

#ifndef SRC_HW_STOP_INFO_H_
#define SRC_HW_STOP_INFO_H_

#include <cstdint>
#include <string>

namespace eof {

// Why Resume()/Continue() returned control to the host.
enum class HaltReason : uint8_t {
  kBreakpoint,      // PC reached an address with a breakpoint set
  kFault,           // target raised a hardware fault / panic with no handler breakpoint
  kIdle,            // firmware is parked waiting for host input (no breakpoint set)
  kQuantumExpired,  // execution quantum exhausted without reaching a stop point
  kHang,            // firmware wedged in a non-advancing loop (PC frozen)
  kPoweredOff,      // board is not running (boot failure or not powered)
};

const char* HaltReasonName(HaltReason reason);

struct StopInfo {
  HaltReason reason = HaltReason::kPoweredOff;
  uint64_t pc = 0;
  // Symbol containing the PC, when known (e.g. "execute_one", "panic_handler").
  std::string symbol;
};

}  // namespace eof

#endif  // SRC_HW_STOP_INFO_H_
