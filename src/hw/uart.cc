#include "src/hw/uart.h"

namespace eof {

void Uart::Write(const std::string& data) {
  if (frozen_) {
    dropped_ += data.size();
    return;
  }
  if (buffer_.size() + data.size() > capacity_) {
    // Keep the oldest output (closest to the fault origin) and drop the tail, matching how
    // a stalled reader loses the most recent bytes.
    size_t room = capacity_ > buffer_.size() ? capacity_ - buffer_.size() : 0;
    buffer_.append(data, 0, room);
    dropped_ += data.size() - room;
    return;
  }
  buffer_.append(data);
}

void Uart::WriteLine(const std::string& line) { Write(line + "\n"); }

std::string Uart::Drain() {
  std::string out;
  out.swap(buffer_);
  return out;
}

void Uart::Reset() {
  buffer_.clear();
  frozen_ = false;
  dropped_ = 0;
}

}  // namespace eof
