#include "src/hw/board.h"
#include <cstddef>

#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/hw/timing.h"

namespace eof {
namespace {

// PC wiggle: the synthetic PC walks a 4 KiB window above the current program point as
// cycles burn, so a healthy target's PC visibly changes between host samples.
constexpr uint64_t kPcWindowWords = 1024;

// How many core cycles an idle/frozen Continue() burns before returning to the host.
constexpr uint64_t kFrozenQuantumCycles = 100000;

}  // namespace

const char* PowerStateName(PowerState state) {
  switch (state) {
    case PowerState::kOff:
      return "off";
    case PowerState::kBootFailed:
      return "boot-failed";
    case PowerState::kRunning:
      return "running";
    case PowerState::kFaulted:
      return "faulted";
    case PowerState::kHung:
      return "hung";
  }
  return "?";
}

Board::Board(BoardSpec spec)
    : spec_(std::move(spec)),
      ram_(spec_.ram_bytes, 0),
      flash_(spec_.flash_bytes),
      uart_(64 * 1024) {}

Status Board::RamWrite(uint64_t offset, const std::vector<uint8_t>& data) {
  if (offset + data.size() > ram_.size()) {
    return OutOfRangeError(StrFormat("RAM write at +0x%llx overruns %zu-byte RAM",
                                     static_cast<unsigned long long>(offset), ram_.size()));
  }
  std::copy(data.begin(), data.end(), ram_.begin() + static_cast<std::ptrdiff_t>(offset));
  return OkStatus();
}

Result<std::vector<uint8_t>> Board::RamRead(uint64_t offset, uint64_t size) const {
  if (offset + size > ram_.size()) {
    return OutOfRangeError(StrFormat("RAM read at +0x%llx overruns %zu-byte RAM",
                                     static_cast<unsigned long long>(offset), ram_.size()));
  }
  return std::vector<uint8_t>(ram_.begin() + static_cast<std::ptrdiff_t>(offset),
                              ram_.begin() + static_cast<std::ptrdiff_t>(offset + size));
}

Status Board::RamWriteU32(uint64_t offset, uint32_t value) {
  if (offset + 4 > ram_.size()) {
    return OutOfRangeError("RAM u32 write out of bounds");
  }
  for (int i = 0; i < 4; ++i) {
    ram_[offset + static_cast<uint64_t>(i)] = static_cast<uint8_t>(value >> (i * 8));
  }
  return OkStatus();
}

Status Board::RamWriteU64(uint64_t offset, uint64_t value) {
  if (offset + 8 > ram_.size()) {
    return OutOfRangeError("RAM u64 write out of bounds");
  }
  for (int i = 0; i < 8; ++i) {
    ram_[offset + static_cast<uint64_t>(i)] = static_cast<uint8_t>(value >> (i * 8));
  }
  return OkStatus();
}

Result<uint32_t> Board::RamReadU32(uint64_t offset) const {
  if (offset + 4 > ram_.size()) {
    return OutOfRangeError("RAM u32 read out of bounds");
  }
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(ram_[offset + static_cast<uint64_t>(i)]) << (i * 8);
  }
  return value;
}

void Board::ConsumeCycles(uint64_t cycles) {
  cycle_count_ += cycles;
  // clock_mhz cycles per microsecond.
  clock_.Advance(cycles / spec_.clock_mhz + 1);
}

bool Board::EnterProgramPoint(uint64_t address) {
  current_point_ = address;
  cycles_at_point_ = cycle_count_;
  ConsumeCycles(4);
  return sw_breakpoints_.count(address) != 0 || hw_breakpoints_.count(address) != 0;
}

void Board::LatchFault(uint64_t handler_address, const std::string& detail) {
  power_state_ = PowerState::kFaulted;
  fault_detail_ = detail;
  frozen_pc_ = handler_address + 8;  // parked a couple of instructions into the handler
  uart_.Freeze();
}

void Board::LatchHang(const std::string& detail) {
  power_state_ = PowerState::kHung;
  fault_detail_ = detail;
  frozen_pc_ = ReadPC();
}

void Board::OnBasicBlockExecuted(uint64_t address) {
  if (hw_breakpoints_.count(address) != 0) {
    bp_hits_.push_back(address);
    // The debugger halts, records, and resumes: two link round-trips.
    clock_.Advance(2 * kDebugTransactionCost);
  }
}

void Board::InstallImage(std::shared_ptr<const FirmwareImage> image) {
  image_ = std::move(image);
}

Status Board::FlashWrite(uint64_t offset, const std::vector<uint8_t>& data) {
  return flash_.Write(offset, data);
}

void Board::Reset() {
  ++reset_count_;
  clock_.Advance(kRebootCost);
  std::fill(ram_.begin(), ram_.end(), 0);
  uart_.Reset();
  bp_hits_.clear();
  pending_events_.clear();
  fault_detail_.clear();
  firmware_.reset();
  current_point_ = 0;
  cycles_at_point_ = cycle_count_;
  frozen_pc_ = 0;

  if (image_ == nullptr || !image_->has_factory()) {
    power_state_ = PowerState::kOff;
    return;
  }
  Status flash_ok = image_->VerifyFlash(flash_);
  if (!flash_ok.ok()) {
    // Boot ROM rejects the image silently; the host sees only unresponsiveness.
    power_state_ = PowerState::kBootFailed;
    frozen_pc_ = spec_.flash_base;  // stuck in the ROM loader
    return;
  }
  firmware_ = image_->Instantiate();
  power_state_ = PowerState::kRunning;
  Status boot = firmware_->OnBoot(*this);
  if (!boot.ok()) {
    power_state_ = PowerState::kBootFailed;
    frozen_pc_ = ReadPC();
    firmware_.reset();
  }
}

void Board::WarmRestore() {
  ++warm_restore_count_;
  // The boot path below meters itself in cycles (ConsumeCycles advances the clock);
  // a warm restore replaces those charges with one flat cost, so remember where the
  // clock stood and settle up at the end.
  const VirtualTime start = clock_.Now();
  std::fill(ram_.begin(), ram_.end(), 0);
  uart_.Reset();
  bp_hits_.clear();
  pending_events_.clear();
  fault_detail_.clear();
  firmware_.reset();
  current_point_ = 0;
  cycles_at_point_ = cycle_count_;
  frozen_pc_ = 0;

  if (image_ == nullptr || !image_->has_factory()) {
    power_state_ = PowerState::kOff;
    return;
  }
  Status flash_ok = image_->VerifyFlash(flash_);
  if (!flash_ok.ok()) {
    power_state_ = PowerState::kBootFailed;
    frozen_pc_ = spec_.flash_base;
    clock_.RewindTo(start);
    clock_.Advance(kWarmRestoreCost);
    return;
  }
  firmware_ = image_->Instantiate();
  power_state_ = PowerState::kRunning;
  Status boot = firmware_->OnBoot(*this);
  if (!boot.ok()) {
    power_state_ = PowerState::kBootFailed;
    frozen_pc_ = ReadPC();
    firmware_.reset();
  }
  clock_.RewindTo(start);
  clock_.Advance(kWarmRestoreCost);
}

StopInfo Board::Continue(uint64_t max_steps) {
  StopInfo info;
  switch (power_state_) {
    case PowerState::kOff:
    case PowerState::kBootFailed:
      info.reason = HaltReason::kPoweredOff;
      info.pc = frozen_pc_;
      return info;
    case PowerState::kFaulted:
    case PowerState::kHung:
      // The core spins without making progress; the host just loses the quantum.
      clock_.Advance(kFrozenQuantumCycles / spec_.clock_mhz);
      info.reason = HaltReason::kQuantumExpired;
      info.pc = frozen_pc_;
      info.symbol = image_ != nullptr ? image_->symbols().Containing(info.pc) : "";
      return info;
    case PowerState::kRunning:
      break;
  }
  info = firmware_->Resume(*this, max_steps);
  info.pc = ReadPC();
  if (power_state_ == PowerState::kFaulted || power_state_ == PowerState::kHung) {
    info.pc = frozen_pc_;
  }
  // A debugger cannot tell "fault loop" or "wedged" from "still running"; only breakpoints
  // and PC samples are observable. Mask the internal reasons accordingly.
  if (info.reason == HaltReason::kFault || info.reason == HaltReason::kHang) {
    info.reason = HaltReason::kQuantumExpired;
  }
  if (image_ != nullptr) {
    info.symbol = image_->symbols().Containing(info.pc);
  }
  return info;
}

uint64_t Board::ReadPC() const {
  if (power_state_ == PowerState::kFaulted || power_state_ == PowerState::kHung ||
      power_state_ == PowerState::kBootFailed) {
    return frozen_pc_;
  }
  uint64_t delta_words = (cycle_count_ - cycles_at_point_) / 8;
  return current_point_ + (delta_words % kPcWindowWords) * 4;
}

uint32_t Board::PowerDrawMilliAmps() const {
  switch (power_state_) {
    case PowerState::kOff:
      return 0;
    case PowerState::kBootFailed:
      return 18;  // ROM wait loop with peripherals unclocked
    case PowerState::kFaulted:
    case PowerState::kHung:
      return 120;  // tight loop, no WFI: the flat plateau the paper's §6 points at
    case PowerState::kRunning:
      break;
  }
  // Active draw wiggles with recent execution (cycle parity stands in for DVFS noise).
  return 45 + static_cast<uint32_t>((cycle_count_ >> 10) % 23);
}

bool Board::InBasicBlockSpace(uint64_t address) const {
  return image_ != nullptr && image_->InCodeSpace(address);
}

Status Board::AddBreakpoint(uint64_t address) {
  if (HasAnyBreakpoint(address)) {
    return OkStatus();
  }
  if (InBasicBlockSpace(address)) {
    if (static_cast<int>(hw_breakpoints_.size()) >= spec_.max_hw_breakpoints) {
      return ResourceExhaustedError(
          StrFormat("all %d hardware breakpoints in use", spec_.max_hw_breakpoints));
    }
    hw_breakpoints_.insert(address);
  } else {
    sw_breakpoints_.insert(address);
  }
  return OkStatus();
}

void Board::RemoveBreakpoint(uint64_t address) {
  sw_breakpoints_.erase(address);
  hw_breakpoints_.erase(address);
}

void Board::ClearBreakpoints() {
  sw_breakpoints_.clear();
  hw_breakpoints_.clear();
}

bool Board::NextPeripheralEvent(PeripheralEvent* event) {
  if (pending_events_.empty()) {
    return false;
  }
  *event = pending_events_.front();
  pending_events_.pop_front();
  return true;
}

bool Board::InjectPeripheralEvent(const PeripheralEvent& event) {
  if (pending_events_.size() >= 64) {
    return false;  // the signal generator outpaced the target; drop
  }
  pending_events_.push_back(event);
  return true;
}

std::vector<uint64_t> Board::TakeBreakpointHits() {
  std::vector<uint64_t> hits;
  hits.swap(bp_hits_);
  return hits;
}

}  // namespace eof
