// Firmware executes on a Board. The board is OS-agnostic: it boots whatever the installed
// image's factory produces and advances it via Resume(). The agent layer (src/agent)
// provides the concrete Firmware that embeds an embedded OS and the Figure-4 fuzzing loop.

#ifndef SRC_HW_FIRMWARE_H_
#define SRC_HW_FIRMWARE_H_

#include <memory>

#include "src/common/status.h"
#include "src/hw/stop_info.h"
#include "src/hw/target_env.h"

namespace eof {

class Firmware {
 public:
  virtual ~Firmware() = default;

  // One-time boot: OS init, agent setup, boot banner on UART. A failed boot leaves the
  // board in the boot-failed state (watchdog #1 territory).
  virtual Status OnBoot(TargetEnv& env) = 0;

  // Runs until a breakpointed program point, a fault, an idle point (agent waiting for
  // host input), a wedge, or `max_steps` agent steps — whichever comes first.
  virtual StopInfo Resume(TargetEnv& env, uint64_t max_steps) = 0;
};

}  // namespace eof

#endif  // SRC_HW_FIRMWARE_H_
