#include "src/hw/stop_info.h"

#include "src/hw/peripheral_events.h"

namespace eof {

const char* HaltReasonName(HaltReason reason) {
  switch (reason) {
    case HaltReason::kBreakpoint:
      return "breakpoint";
    case HaltReason::kFault:
      return "fault";
    case HaltReason::kIdle:
      return "idle";
    case HaltReason::kQuantumExpired:
      return "quantum-expired";
    case HaltReason::kHang:
      return "hang";
    case HaltReason::kPoweredOff:
      return "powered-off";
  }
  return "?";
}

const char* PeripheralEventKindName(PeripheralEventKind kind) {
  switch (kind) {
    case PeripheralEventKind::kGpioEdge:
      return "gpio-edge";
    case PeripheralEventKind::kSerialRx:
      return "serial-rx";
    case PeripheralEventKind::kTimerTick:
      return "timer-tick";
    case PeripheralEventKind::kCanFrame:
      return "can-frame";
  }
  return "?";
}

}  // namespace eof
