#include "src/hw/board_snapshot.h"

#include <algorithm>

#include "src/common/strings.h"
#include "src/hw/stop_info.h"

namespace eof {

namespace {

// Warm-resume handshake bound. Two rounds park a clean snapshot (breakpoint stop at
// the executor loop, then the idle report); the headroom absorbs a snapshot that
// carries pending work, e.g. a mailbox program the agent consumes on the way back.
constexpr int kWarmResumeRounds = 6;

}  // namespace

Result<BoardSnapshot> BoardSnapshot::Capture(DebugPort& port, const FirmwareImage& image) {
  BoardSnapshot snapshot;
  const BoardSpec& spec = port.spec();
  snapshot.ram_base_ = spec.ram_base;

  // One vectored read plan covers the whole RAM window: a single link round trip
  // plus the per-byte transfer cost, exactly like any other batched transaction.
  std::vector<PortOp> plan;
  for (uint64_t offset = 0; offset < spec.ram_bytes; offset += kSnapshotChunkBytes) {
    uint64_t size = std::min(kSnapshotChunkBytes, spec.ram_bytes - offset);
    plan.push_back(PortOp::Read(spec.ram_base + offset, size));
  }
  RETURN_IF_ERROR(port.RunBatch(&plan));
  snapshot.ram_.reserve(spec.ram_bytes);
  for (const PortOp& op : plan) {
    snapshot.ram_.insert(snapshot.ram_.end(), op.result.begin(), op.result.end());
  }

  ASSIGN_OR_RETURN(snapshot.pc_, port.ReadPC());

  // Flash shadow: a target-side digest per payload-bearing partition. Restore()
  // re-checks these before trusting the resident code.
  for (const Partition& partition : image.partition_table().partitions) {
    auto payload = image.PayloadOf(partition.name);
    if (!payload.ok()) {
      continue;  // raw partitions (nvs) carry no payload to fingerprint
    }
    FlashShadow shadow;
    shadow.partition = partition.name;
    shadow.address = spec.flash_base + partition.offset;
    shadow.size = payload.value().size();
    ASSIGN_OR_RETURN(shadow.digest, port.ChecksumMem(shadow.address, shadow.size));
    snapshot.flash_shadow_.push_back(std::move(shadow));
  }
  // The digests above audited the flash as it stands right now; remember the
  // controller's write count so restores can skip re-auditing untouched flash.
  ASSIGN_OR_RETURN(snapshot.audited_write_count_, port.ReadFlashWriteCount());
  return snapshot;
}

Status BoardSnapshot::Restore(DebugPort& port) const {
  if (ram_.empty()) {
    return FailedPreconditionError("empty board snapshot");
  }
  // 1. The resident code must still be what the snapshot ran on: a kernel bug that
  // scribbled on flash means the warm path cannot trust the image and the caller
  // must reflash. The audit is generation-gated: when the flash controller's write
  // counter has not moved since the last audit, nothing can have changed and the
  // per-partition checksums (priced by the byte over the whole image) are skipped —
  // one fixed-latency counter read is the entire hot-path cost.
  ASSIGN_OR_RETURN(uint64_t write_count, port.ReadFlashWriteCount());
  if (write_count != audited_write_count_) {
    ++shadow_audits_;
    for (const FlashShadow& shadow : flash_shadow_) {
      ASSIGN_OR_RETURN(uint64_t digest, port.ChecksumMem(shadow.address, shadow.size));
      if (digest != shadow.digest) {
        return FailedPreconditionError(
            StrFormat("flash shadow mismatch in partition '%s'; snapshot restore "
                      "requires a full reflash",
                      shadow.partition.c_str()));
      }
    }
    // Every partition matched: these bytes are re-certified as of `write_count`.
    audited_write_count_ = write_count;
  }

  // 2. Warm core restore: clears the fault latch and re-enters the agent without
  // the boot ROM. From here on a failure leaves the board half restored.
  RETURN_IF_ERROR(port.WarmRestoreCore());

  // 3. The captured RAM image goes back in ONE batched write. It lands after the
  // warm boot's own status/banner writes, so the snapshot bytes win.
  std::vector<PortOp> plan;
  for (uint64_t offset = 0; offset < ram_.size(); offset += kSnapshotChunkBytes) {
    uint64_t size = std::min<uint64_t>(kSnapshotChunkBytes, ram_.size() - offset);
    plan.push_back(PortOp::Write(
        ram_base_ + offset,
        std::vector<uint8_t>(ram_.begin() + static_cast<ptrdiff_t>(offset),
                             ram_.begin() + static_cast<ptrdiff_t>(offset + size))));
  }
  RETURN_IF_ERROR(port.RunBatch(&plan));

  // 4. Warm-resume handshake: walk the agent back to its idle park so the next
  // test case finds the same state a cold boot would present.
  for (int round = 0; round < kWarmResumeRounds; ++round) {
    ASSIGN_OR_RETURN(StopInfo stop, port.Continue());
    if (stop.reason == HaltReason::kIdle) {
      return OkStatus();
    }
    if (stop.reason == HaltReason::kPoweredOff) {
      return FailedPreconditionError("target lost power during warm resume");
    }
  }
  // A snapshot carrying pending work can legitimately use every round without
  // reporting idle; whatever state the board is in now belongs to the executor's
  // own monitors (and, for bugs, to the cold-boot validation oracle).
  return OkStatus();
}

}  // namespace eof
