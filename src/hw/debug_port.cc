#include "src/hw/debug_port.h"

#include "src/common/strings.h"
#include "src/hw/timing.h"

namespace eof {

Status DebugPort::Connect() {
  if (!board_->spec().has_debug_port) {
    return UnavailableError(
        StrFormat("board '%s' exposes no debug port", board_->spec().name.c_str()));
  }
  if (link_severed_) {
    board_->clock().Advance(kLinkTimeout);
    ++stats_.timeouts;
    return TimeoutError("debug link severed");
  }
  board_->clock().Advance(kDebugTransactionCost);
  ++stats_.transactions;
  attached_ = true;
  return OkStatus();
}

Status DebugPort::CheckResponsive(bool needs_core) {
  if (!attached_) {
    return UnavailableError("debug port not attached");
  }
  if (link_severed_) {
    board_->clock().Advance(kLinkTimeout);
    ++stats_.timeouts;
    return TimeoutError("debug link severed");
  }
  if (needs_core && (board_->power_state() == PowerState::kOff ||
                     board_->power_state() == PowerState::kBootFailed)) {
    // A core that never left the boot ROM does not service run-control requests.
    board_->clock().Advance(kLinkTimeout);
    ++stats_.timeouts;
    return TimeoutError(StrFormat("target unresponsive (state: %s)",
                                  PowerStateName(board_->power_state())));
  }
  return OkStatus();
}

Result<std::vector<uint8_t>> DebugPort::ReadMem(uint64_t address, uint64_t size) {
  RETURN_IF_ERROR(CheckResponsive(/*needs_core=*/true));
  board_->clock().Advance(DebugMemCost(size));
  ++stats_.transactions;
  stats_.bytes_read += size;
  const BoardSpec& spec = board_->spec();
  if (address >= spec.ram_base && address + size <= spec.ram_base + spec.ram_bytes) {
    return board_->RamRead(address - spec.ram_base, size);
  }
  if (address >= spec.flash_base && address + size <= spec.flash_base + spec.flash_bytes) {
    return board_->flash().Read(address - spec.flash_base, size);
  }
  return OutOfRangeError(StrFormat("address 0x%llx not in RAM or flash window",
                                   static_cast<unsigned long long>(address)));
}

Status DebugPort::WriteMem(uint64_t address, const std::vector<uint8_t>& data) {
  RETURN_IF_ERROR(CheckResponsive(/*needs_core=*/true));
  board_->clock().Advance(DebugMemCost(data.size()));
  ++stats_.transactions;
  stats_.bytes_written += data.size();
  const BoardSpec& spec = board_->spec();
  if (address >= spec.ram_base && address + data.size() <= spec.ram_base + spec.ram_bytes) {
    return board_->RamWrite(address - spec.ram_base, data);
  }
  return OutOfRangeError(StrFormat("address 0x%llx not writable over the link",
                                   static_cast<unsigned long long>(address)));
}

Result<uint64_t> DebugPort::ReadPC() {
  RETURN_IF_ERROR(CheckResponsive(/*needs_core=*/true));
  board_->clock().Advance(kDebugTransactionCost);
  ++stats_.transactions;
  return board_->ReadPC();
}

Result<StopInfo> DebugPort::Continue(uint64_t max_steps) {
  RETURN_IF_ERROR(CheckResponsive(/*needs_core=*/true));
  board_->clock().Advance(kDebugTransactionCost);
  ++stats_.transactions;
  return board_->Continue(max_steps);
}

Status DebugPort::SetBreakpoint(uint64_t address) {
  RETURN_IF_ERROR(CheckResponsive(/*needs_core=*/false));
  board_->clock().Advance(kDebugTransactionCost);
  ++stats_.transactions;
  return board_->AddBreakpoint(address);
}

Status DebugPort::ClearBreakpoint(uint64_t address) {
  RETURN_IF_ERROR(CheckResponsive(/*needs_core=*/false));
  board_->clock().Advance(kDebugTransactionCost);
  ++stats_.transactions;
  board_->RemoveBreakpoint(address);
  return OkStatus();
}

void DebugPort::ClearAllBreakpoints() {
  board_->clock().Advance(kDebugTransactionCost);
  ++stats_.transactions;
  board_->ClearBreakpoints();
}

Status DebugPort::FlashPartition(uint64_t offset, const std::vector<uint8_t>& data) {
  RETURN_IF_ERROR(CheckResponsive(/*needs_core=*/false));
  board_->clock().Advance(FlashProgramCost(data.size()));
  ++stats_.transactions;
  stats_.flash_bytes += data.size();
  return board_->FlashWrite(offset, data);
}

Status DebugPort::ResetTarget() {
  RETURN_IF_ERROR(CheckResponsive(/*needs_core=*/false));
  ++stats_.transactions;
  ++stats_.resets;
  board_->Reset();  // charges kRebootCost internally
  return OkStatus();
}

Status DebugPort::InjectPeripheralEvent(const PeripheralEvent& event) {
  RETURN_IF_ERROR(CheckResponsive(/*needs_core=*/false));
  board_->clock().Advance(kDebugTransactionCost);
  ++stats_.transactions;
  if (!board_->InjectPeripheralEvent(event)) {
    return ResourceExhaustedError("peripheral event queue saturated");
  }
  return OkStatus();
}

std::string DebugPort::DrainUart() { return board_->uart().Drain(); }

std::vector<uint64_t> DebugPort::TakeBreakpointHits() { return board_->TakeBreakpointHits(); }

}  // namespace eof
