#include "src/hw/debug_port.h"

#include "src/common/hash.h"
#include "src/common/strings.h"
#include "src/hw/timing.h"

namespace eof {

DebugPortStats DebugPortStatsFromSnapshot(const telemetry::MetricsSnapshot& snapshot) {
  DebugPortStats stats;
  stats.transactions = snapshot.CounterValue("link.transactions");
  stats.batches = snapshot.CounterValue("link.batches");
  stats.batched_ops = snapshot.CounterValue("link.batched_ops");
  stats.bytes_read = snapshot.CounterValue("link.bytes_read");
  stats.bytes_written = snapshot.CounterValue("link.bytes_written");
  stats.timeouts = snapshot.CounterValue("link.timeouts");
  stats.flash_bytes = snapshot.CounterValue("link.flash_bytes");
  stats.flash_skipped_bytes = snapshot.CounterValue("link.flash_skipped_bytes");
  stats.resets = snapshot.CounterValue("link.resets");
  stats.warm_restores = snapshot.CounterValue("link.warm_restores");
  return stats;
}

DebugPort::DebugPort(Board* board, telemetry::MetricsRegistry* registry) : board_(board) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<telemetry::MetricsRegistry>();
    registry = owned_registry_.get();
  }
  registry_ = registry;
  transactions_ = registry_->RegisterCounter("link.transactions");
  batches_ = registry_->RegisterCounter("link.batches");
  batched_ops_ = registry_->RegisterCounter("link.batched_ops");
  bytes_read_ = registry_->RegisterCounter("link.bytes_read");
  bytes_written_ = registry_->RegisterCounter("link.bytes_written");
  timeouts_ = registry_->RegisterCounter("link.timeouts");
  flash_bytes_ = registry_->RegisterCounter("link.flash_bytes");
  flash_skipped_bytes_ = registry_->RegisterCounter("link.flash_skipped_bytes");
  resets_ = registry_->RegisterCounter("link.resets");
  warm_restores_ = registry_->RegisterCounter("link.warm_restores");
}

DebugPortStats DebugPort::stats() const {
  DebugPortStats stats;
  stats.transactions = transactions_->Value();
  stats.batches = batches_->Value();
  stats.batched_ops = batched_ops_->Value();
  stats.bytes_read = bytes_read_->Value();
  stats.bytes_written = bytes_written_->Value();
  stats.timeouts = timeouts_->Value();
  stats.flash_bytes = flash_bytes_->Value();
  stats.flash_skipped_bytes = flash_skipped_bytes_->Value();
  stats.resets = resets_->Value();
  stats.warm_restores = warm_restores_->Value();
  return stats;
}

Status DebugPort::Connect() {
  if (!board_->spec().has_debug_port) {
    return UnavailableError(
        StrFormat("board '%s' exposes no debug port", board_->spec().name.c_str()));
  }
  if (link_severed_) {
    board_->clock().Advance(kLinkTimeout);
    timeouts_->Increment();
    return TimeoutError("debug link severed");
  }
  board_->clock().Advance(kDebugTransactionCost);
  transactions_->Increment();
  attached_ = true;
  return OkStatus();
}

Status DebugPort::CheckResponsive(bool needs_core) {
  if (!attached_) {
    return UnavailableError("debug port not attached");
  }
  if (link_severed_) {
    board_->clock().Advance(kLinkTimeout);
    timeouts_->Increment();
    return TimeoutError("debug link severed");
  }
  if (needs_core && (board_->power_state() == PowerState::kOff ||
                     board_->power_state() == PowerState::kBootFailed)) {
    // A core that never left the boot ROM does not service run-control requests.
    board_->clock().Advance(kLinkTimeout);
    timeouts_->Increment();
    return TimeoutError(StrFormat("target unresponsive (state: %s)",
                                  PowerStateName(board_->power_state())));
  }
  return OkStatus();
}

Result<std::vector<uint8_t>> DebugPort::ReadWindow(uint64_t address, uint64_t size) const {
  const BoardSpec& spec = board_->spec();
  if (address >= spec.ram_base && address + size <= spec.ram_base + spec.ram_bytes) {
    return board_->RamRead(address - spec.ram_base, size);
  }
  if (address >= spec.flash_base && address + size <= spec.flash_base + spec.flash_bytes) {
    return board_->flash().Read(address - spec.flash_base, size);
  }
  return OutOfRangeError(StrFormat("address 0x%llx not in RAM or flash window",
                                   static_cast<unsigned long long>(address)));
}

Status DebugPort::WriteWindow(uint64_t address, const std::vector<uint8_t>& data) {
  const BoardSpec& spec = board_->spec();
  if (address >= spec.ram_base && address + data.size() <= spec.ram_base + spec.ram_bytes) {
    return board_->RamWrite(address - spec.ram_base, data);
  }
  return OutOfRangeError(StrFormat("address 0x%llx not writable over the link",
                                   static_cast<unsigned long long>(address)));
}

Result<std::vector<uint8_t>> DebugPort::ReadMem(uint64_t address, uint64_t size) {
  Status gate = CheckResponsive(/*needs_core=*/true);
  if (!gate.ok()) {
    Note(telemetry::FlightPortOp::kRead, address, size, false);
    return gate;
  }
  board_->clock().Advance(DebugMemCost(size));
  transactions_->Increment();
  bytes_read_->Add(size);
  Note(telemetry::FlightPortOp::kRead, address, size, true);
  return ReadWindow(address, size);
}

Status DebugPort::WriteMem(uint64_t address, const std::vector<uint8_t>& data) {
  Status gate = CheckResponsive(/*needs_core=*/true);
  if (!gate.ok()) {
    Note(telemetry::FlightPortOp::kWrite, address, data.size(), false);
    return gate;
  }
  board_->clock().Advance(DebugMemCost(data.size()));
  transactions_->Increment();
  bytes_written_->Add(data.size());
  Note(telemetry::FlightPortOp::kWrite, address, data.size(), true);
  return WriteWindow(address, data);
}

uint64_t DebugPort::BatchPlanBytes(const std::vector<PortOp>& ops, bool* needs_core) {
  uint64_t total_bytes = 0;
  for (const PortOp& op : ops) {
    switch (op.kind) {
      case PortOp::Kind::kRead:
        *needs_core = true;
        total_bytes += op.size;
        break;
      case PortOp::Kind::kWrite:
        *needs_core = true;
        total_bytes += op.data.size();
        break;
      case PortOp::Kind::kSubU32:
        *needs_core = true;
        total_bytes += 8;  // the RMW helper moves a u32 each way
        break;
      case PortOp::Kind::kSetBreakpoint:
        total_bytes += 8;  // comparator programming word
        break;
    }
  }
  return total_bytes;
}

Status DebugPort::RunBatch(std::vector<PortOp>* ops) {
  if (ops == nullptr || ops->empty()) {
    return OkStatus();  // nothing queued: no round trip, no charge
  }
  bool needs_core = false;
  uint64_t total_bytes = BatchPlanBytes(*ops, &needs_core);
  // One responsiveness gate for the whole batch: a severed link burns a single
  // timeout and applies nothing.
  Status gate = CheckResponsive(needs_core);
  if (!gate.ok()) {
    // One failed record stands in for the whole unapplied batch.
    Note(telemetry::FlightPortOp::kRead, ops->front().address, ops->size(), false);
    return gate;
  }
  board_->clock().Advance(DebugBatchCost(total_bytes));
  transactions_->Increment();
  batches_->Increment();
  batched_ops_->Add(ops->size());
  return ApplyBatchOps(ops);
}

Status DebugPort::ApplyBatchOps(std::vector<PortOp>* ops) {
  for (size_t i = 0; i < ops->size(); ++i) {
    PortOp& op = (*ops)[i];
    if (flight_ != nullptr) {
      telemetry::FlightPortOp kind = telemetry::FlightPortOp::kRead;
      uint64_t size = op.size;
      switch (op.kind) {
        case PortOp::Kind::kRead:
          kind = telemetry::FlightPortOp::kRead;
          break;
        case PortOp::Kind::kWrite:
          kind = telemetry::FlightPortOp::kWrite;
          size = op.data.size();
          break;
        case PortOp::Kind::kSubU32:
          kind = telemetry::FlightPortOp::kSubU32;
          size = 4;
          break;
        case PortOp::Kind::kSetBreakpoint:
          kind = telemetry::FlightPortOp::kSetBreakpoint;
          size = 0;
          break;
      }
      Note(kind, op.address, size, true);
    }
    switch (op.kind) {
      case PortOp::Kind::kRead: {
        ASSIGN_OR_RETURN(op.result, ReadWindow(op.address, op.size));
        bytes_read_->Add(op.size);
        break;
      }
      case PortOp::Kind::kWrite: {
        RETURN_IF_ERROR(WriteWindow(op.address, op.data));
        bytes_written_->Add(op.data.size());
        break;
      }
      case PortOp::Kind::kSubU32: {
        if (op.operand_op < 0 || static_cast<size_t>(op.operand_op) >= i ||
            (*ops)[static_cast<size_t>(op.operand_op)].kind != PortOp::Kind::kRead) {
          return InvalidArgumentError("kSubU32 operand must reference an earlier kRead op");
        }
        const std::vector<uint8_t>& src = (*ops)[static_cast<size_t>(op.operand_op)].result;
        if (op.operand_offset + 4 > src.size()) {
          return InvalidArgumentError("kSubU32 operand offset out of the read's bounds");
        }
        uint32_t minuend = static_cast<uint32_t>(src[op.operand_offset]) |
                           static_cast<uint32_t>(src[op.operand_offset + 1]) << 8 |
                           static_cast<uint32_t>(src[op.operand_offset + 2]) << 16 |
                           static_cast<uint32_t>(src[op.operand_offset + 3]) << 24;
        const BoardSpec& spec = board_->spec();
        if (op.address < spec.ram_base || op.address + 4 > spec.ram_base + spec.ram_bytes) {
          return OutOfRangeError("kSubU32 target not in the RAM window");
        }
        uint64_t offset = op.address - spec.ram_base;
        ASSIGN_OR_RETURN(uint32_t current, board_->RamReadU32(offset));
        uint32_t updated = current >= minuend ? current - minuend : 0;
        RETURN_IF_ERROR(board_->RamWriteU32(offset, updated));
        bytes_read_->Add(4);
        bytes_written_->Add(4);
        break;
      }
      case PortOp::Kind::kSetBreakpoint: {
        RETURN_IF_ERROR(board_->AddBreakpoint(op.address));
        break;
      }
    }
  }
  return OkStatus();
}

Result<uint64_t> DebugPort::ChecksumMem(uint64_t address, uint64_t size) {
  // needs_core=false: the checksum runs through the debug unit's memory AP / flash
  // controller, so it is serviced even on a core that never booted (like FlashPartition).
  Status gate = CheckResponsive(/*needs_core=*/false);
  Note(telemetry::FlightPortOp::kChecksum, address, size, gate.ok());
  RETURN_IF_ERROR(gate);
  board_->clock().Advance(ChecksumCost(size));
  transactions_->Increment();
  ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadWindow(address, size));
  bytes_read_->Add(8);  // only the digest crosses the link
  return Fnv1aBytes(bytes.data(), bytes.size());
}

Result<uint64_t> DebugPort::ReadFlashWriteCount() {
  // Status-word read through the memory AP; like ChecksumMem it needs no live core.
  Status gate = CheckResponsive(/*needs_core=*/false);
  Note(telemetry::FlightPortOp::kRead, board_->spec().flash_base, 8, gate.ok());
  RETURN_IF_ERROR(gate);
  board_->clock().Advance(kDebugTransactionCost);
  transactions_->Increment();
  bytes_read_->Add(8);
  return board_->flash().write_count();
}

Result<uint64_t> DebugPort::ReadPC() {
  Status gate = CheckResponsive(/*needs_core=*/true);
  Note(telemetry::FlightPortOp::kReadPc, 0, 0, gate.ok());
  RETURN_IF_ERROR(gate);
  board_->clock().Advance(kDebugTransactionCost);
  transactions_->Increment();
  return board_->ReadPC();
}

Result<StopInfo> DebugPort::Continue(uint64_t max_steps) {
  Status gate = CheckResponsive(/*needs_core=*/true);
  if (!gate.ok()) {
    Note(telemetry::FlightPortOp::kContinue, 0, 0, false);
    return gate;
  }
  board_->clock().Advance(kDebugTransactionCost);
  transactions_->Increment();
  StopInfo stop = board_->Continue(max_steps);
  // Recorded post-stop so the record carries the stop pc the host actually saw.
  Note(telemetry::FlightPortOp::kContinue, stop.pc, 0, true);
  return stop;
}

Result<StopInfo> DebugPort::ContinueWithRead(uint64_t address, uint64_t size,
                                             std::vector<uint8_t>* out,
                                             uint64_t max_steps) {
  Status gate = CheckResponsive(/*needs_core=*/true);
  if (!gate.ok()) {
    Note(telemetry::FlightPortOp::kContinue, 0, size, false);
    return gate;
  }
  board_->clock().Advance(DebugBatchCost(size));
  transactions_->Increment();
  batches_->Increment();
  batched_ops_->Add(2);
  StopInfo stop = board_->Continue(max_steps);
  Note(telemetry::FlightPortOp::kContinue, stop.pc, size, true);
  ASSIGN_OR_RETURN(*out, ReadWindow(address, size));
  bytes_read_->Add(size);
  return stop;
}

Result<StopInfo> DebugPort::ContinueWithPlan(std::vector<PortOp>* ops, uint64_t address,
                                             uint64_t size, std::vector<uint8_t>* out,
                                             uint64_t max_steps) {
  bool needs_core = true;  // the continue itself needs a live core
  uint64_t plan_bytes = ops == nullptr ? 0 : BatchPlanBytes(*ops, &needs_core);
  Status gate = CheckResponsive(needs_core);
  if (!gate.ok()) {
    // One failed record stands in for the unapplied plan and the continue.
    Note(telemetry::FlightPortOp::kContinue, 0, size, false);
    return gate;
  }
  // One fixed-latency charge for plan + continue + piggybacked read: this is the
  // overlapped drain's whole saving — the plan ops ride the continue round trip
  // instead of paying their own kDebugTransactionCost.
  board_->clock().Advance(DebugBatchCost(plan_bytes + size));
  transactions_->Increment();
  batches_->Increment();
  batched_ops_->Add((ops == nullptr ? 0 : ops->size()) + 2);
  if (ops != nullptr) {
    // The target is stopped while the queued ops apply (they commit before the
    // run-control release), so the plan sees a quiescent ring.
    RETURN_IF_ERROR(ApplyBatchOps(ops));
  }
  StopInfo stop = board_->Continue(max_steps);
  Note(telemetry::FlightPortOp::kContinue, stop.pc, size, true);
  ASSIGN_OR_RETURN(*out, ReadWindow(address, size));
  bytes_read_->Add(size);
  return stop;
}

Status DebugPort::SetBreakpoint(uint64_t address) {
  Status gate = CheckResponsive(/*needs_core=*/false);
  Note(telemetry::FlightPortOp::kSetBreakpoint, address, 0, gate.ok());
  RETURN_IF_ERROR(gate);
  board_->clock().Advance(kDebugTransactionCost);
  transactions_->Increment();
  return board_->AddBreakpoint(address);
}

Status DebugPort::ClearBreakpoint(uint64_t address) {
  RETURN_IF_ERROR(CheckResponsive(/*needs_core=*/false));
  board_->clock().Advance(kDebugTransactionCost);
  transactions_->Increment();
  board_->RemoveBreakpoint(address);
  return OkStatus();
}

void DebugPort::ClearAllBreakpoints() {
  board_->clock().Advance(kDebugTransactionCost);
  transactions_->Increment();
  board_->ClearBreakpoints();
}

Status DebugPort::FlashPartition(uint64_t offset, const std::vector<uint8_t>& data) {
  Status gate = CheckResponsive(/*needs_core=*/false);
  Note(telemetry::FlightPortOp::kFlash, offset, data.size(), gate.ok());
  RETURN_IF_ERROR(gate);
  board_->clock().Advance(FlashProgramCost(data.size()));
  transactions_->Increment();
  flash_bytes_->Add(data.size());
  return board_->FlashWrite(offset, data);
}

Status DebugPort::ResetTarget() {
  Status gate = CheckResponsive(/*needs_core=*/false);
  Note(telemetry::FlightPortOp::kReset, 0, 0, gate.ok());
  RETURN_IF_ERROR(gate);
  transactions_->Increment();
  resets_->Increment();
  board_->Reset();  // charges kRebootCost internally
  return OkStatus();
}

Status DebugPort::WarmRestoreCore() {
  // needs_core=false: like a reset, the restore request goes through the debug
  // unit's reset/halt logic, which answers even when the core is faulted or parked.
  Status gate = CheckResponsive(/*needs_core=*/false);
  Note(telemetry::FlightPortOp::kWarmRestore, 0, 0, gate.ok());
  RETURN_IF_ERROR(gate);
  transactions_->Increment();
  warm_restores_->Increment();
  board_->WarmRestore();  // charges kWarmRestoreCost internally
  if (board_->power_state() != PowerState::kRunning) {
    return FailedPreconditionError(
        StrFormat("warm restore left the target %s; a full reflash+reboot is needed",
                  PowerStateName(board_->power_state())));
  }
  return OkStatus();
}

Status DebugPort::InjectPeripheralEvent(const PeripheralEvent& event) {
  Status gate = CheckResponsive(/*needs_core=*/false);
  Note(telemetry::FlightPortOp::kPeripheral, static_cast<uint64_t>(event.kind),
       event.value, gate.ok());
  RETURN_IF_ERROR(gate);
  board_->clock().Advance(kDebugTransactionCost);
  transactions_->Increment();
  if (!board_->InjectPeripheralEvent(event)) {
    return ResourceExhaustedError("peripheral event queue saturated");
  }
  return OkStatus();
}

std::string DebugPort::DrainUart() {
  std::string text = board_->uart().Drain();
  if (flight_ != nullptr) {
    // The UART tail is the crash dump's most valuable column: every drained line
    // lands in the ring before any monitor decides what the text means.
    Note(telemetry::FlightPortOp::kUartDrain, 0, text.size(), true);
    flight_->RecordUartText(Now(), text);
  }
  return text;
}

std::vector<uint64_t> DebugPort::TakeBreakpointHits() { return board_->TakeBreakpointHits(); }

}  // namespace eof
