// Static description of a target board: architecture, memory geometry, debug facilities,
// and peripheral population. EOF's adaptability claims (Table 1) are about exactly these
// properties — any board exposing a JTAG/SWD-style debug port can be driven.

#ifndef SRC_HW_BOARD_SPEC_H_
#define SRC_HW_BOARD_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace eof {

enum class Arch : uint8_t {
  kArm,
  kRiscV,
  kXtensa,
  kMips,
  kPowerPc,
  kMsp430,
};

const char* ArchName(Arch arch);

// Peripherals that gate hardware-specific kernel paths. Emulated boards (QEMU) lack the
// peripheral-accurate members, which is why emulation-based fuzzers cannot reach those
// branches (§2.2: "many STM32H7-based controllers lack peripheral-accurate emulators").
enum class Peripheral : uint8_t {
  kUartHw,     // hardware UART FIFO / flow control paths
  kSpiFlash,   // external flash controller
  kGpio,
  kCan,
  kEthernet,
  kWifi,
  kHwTimer,
  kTrng,       // true random number generator
};

const char* PeripheralName(Peripheral peripheral);

struct BoardSpec {
  std::string name;          // e.g. "esp32-devkitc"
  Arch arch = Arch::kArm;
  uint32_t clock_mhz = 100;  // core clock; converts cycles to virtual time
  uint64_t ram_bytes = 512 * 1024;
  uint64_t flash_bytes = 4 * 1024 * 1024;

  // Address map (absolute addresses as the debugger sees them).
  uint64_t flash_base = 0x08000000;
  uint64_t ram_base = 0x20000000;
  uint64_t text_base = 0x08010000;  // where code symbols are laid out

  int max_hw_breakpoints = 6;  // hardware breakpoint units (GDBFuzz leans on these)
  bool emulated = false;       // true for QEMU-style virtual boards
  bool has_debug_port = true;  // JTAG/SWD exposed

  std::vector<Peripheral> peripherals;

  bool HasPeripheral(Peripheral peripheral) const {
    for (Peripheral p : peripherals) {
      if (p == peripheral) {
        return true;
      }
    }
    return false;
  }
};

}  // namespace eof

#endif  // SRC_HW_BOARD_SPEC_H_
