// Simulated on-board flash with a partition layout.
//
// The embedded OS image is split into partitions (bootloader, kernel, app, nvs...), each at
// a fixed offset — the memory-layout analysis step in Figure 3 (①) extracts exactly this
// table from the build configuration, and StateRestoration (Algorithm 1) reflashes each
// partition at its offset. Kernel bugs can scribble over flash; boot-time validation then
// fails until the host reflashes pristine bytes.

#ifndef SRC_HW_FLASH_H_
#define SRC_HW_FLASH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace eof {

// One entry of the partition table ("a configuration file supplied by the developer").
struct Partition {
  std::string name;    // "bootloader", "kernel", ...
  uint64_t offset = 0;  // byte offset into flash
  uint64_t size = 0;    // reserved region size
};

struct PartitionTable {
  std::vector<Partition> partitions;

  // Returns nullptr when absent.
  const Partition* Find(const std::string& name) const;

  // Validates that partitions are in-bounds for `flash_size` and non-overlapping.
  Status Validate(uint64_t flash_size) const;
};

class Flash {
 public:
  explicit Flash(uint64_t size_bytes) : storage_(size_bytes, 0xff) {}

  uint64_t size() const { return storage_.size(); }

  // Program bytes at `offset` (debug-port reflash path, or a buggy kernel write).
  Status Write(uint64_t offset, const std::vector<uint8_t>& data);

  // Reads `size` bytes at `offset`.
  Result<std::vector<uint8_t>> Read(uint64_t offset, uint64_t size) const;

  // Erases the whole device back to 0xff.
  void MassErase();

  // Number of programming operations since construction (wear accounting for stats).
  uint64_t write_count() const { return write_count_; }

 private:
  std::vector<uint8_t> storage_;
  uint64_t write_count_ = 0;
};

}  // namespace eof

#endif  // SRC_HW_FLASH_H_
