// The simulated MCU board: RAM, flash, UART, a synthetic program counter, breakpoint
// units, a fault latch, and a virtual clock. It boots whatever firmware image was
// installed and advances it in quanta. The host side never calls Board directly — it
// attaches a DebugPort (src/hw/debug_port.h), which is the JTAG/SWD-equivalent channel.
//
// Execution model: firmware is C++ code whose progress is metered by ConsumeCycles() and
// punctuated by program points (agent workflow symbols). The PC is synthesized from the
// current program point plus cycles burnt since, which gives the two observable behaviours
// the paper's watchdogs depend on: a healthy target's PC keeps moving, and a faulted or
// wedged target's PC freezes (at the exception handler for faults).

#ifndef SRC_HW_BOARD_H_
#define SRC_HW_BOARD_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/vclock.h"
#include "src/hw/board_spec.h"
#include "src/hw/firmware.h"
#include "src/hw/flash.h"
#include "src/hw/image.h"
#include "src/hw/peripheral_events.h"
#include "src/hw/stop_info.h"
#include "src/hw/target_env.h"
#include "src/hw/uart.h"

namespace eof {

enum class PowerState : uint8_t {
  kOff,         // never booted / no image
  kBootFailed,  // boot ROM rejected the flash image (or OS init failed)
  kRunning,
  kFaulted,     // hardware fault latched; PC frozen at the exception handler
  kHung,        // wedged in a non-advancing loop; PC frozen
};

const char* PowerStateName(PowerState state);

class Board : public TargetEnv {
 public:
  explicit Board(BoardSpec spec);

  // --- TargetEnv (firmware-visible) ---
  const BoardSpec& spec() const override { return spec_; }
  Status RamWrite(uint64_t offset, const std::vector<uint8_t>& data) override;
  Result<std::vector<uint8_t>> RamRead(uint64_t offset, uint64_t size) const override;
  Uart& uart() override { return uart_; }
  Flash& flash() override { return flash_; }
  Status RamWriteU32(uint64_t offset, uint32_t value) override;
  Status RamWriteU64(uint64_t offset, uint64_t value) override;
  Result<uint32_t> RamReadU32(uint64_t offset) const override;
  void ConsumeCycles(uint64_t cycles) override;
  bool EnterProgramPoint(uint64_t address) override;
  bool NextPeripheralEvent(PeripheralEvent* event) override;
  bool HasPeripheral(Peripheral peripheral) const override {
    return spec_.HasPeripheral(peripheral);
  }
  VirtualTime Now() const override { return clock_.Now(); }

  // --- firmware fault interface (invoked by the agent when the kernel traps) ---

  // Latches a hardware fault: PC freezes at `handler_address`, UART freezes after the
  // in-flight banner. `detail` is kept for test introspection only.
  void LatchFault(uint64_t handler_address, const std::string& detail) override;

  // Marks the core as wedged (infinite non-advancing loop): PC freezes in place.
  void LatchHang(const std::string& detail) override;

  // Reports execution of the synthetic basic block at `address` (coverage-site address
  // space). If a hardware breakpoint is armed there the hit is recorded and the debug
  // round-trip cost charged, approximating GDBFuzz's halt-and-relocate cycle.
  void OnBasicBlockExecuted(uint64_t address) override;

  // --- host-side (DebugPort / tooling) ---

  // Registers the image whose partitions the host is about to flash. The board uses it at
  // boot to validate flash contents and instantiate firmware.
  void InstallImage(std::shared_ptr<const FirmwareImage> image);
  const FirmwareImage* installed_image() const { return image_.get(); }

  Status FlashWrite(uint64_t offset, const std::vector<uint8_t>& data);

  // Power-on / reset: validates flash against the installed image, instantiates firmware,
  // and runs its boot path. Leaves the board kRunning parked before the agent loop, or
  // kBootFailed on validation/boot failure.
  void Reset();

  // Warm restore (snapshot fast path): re-enters the firmware boot path without the
  // boot ROM's full power cycle. Charges kWarmRestoreCost instead of kRebootCost,
  // keeps armed breakpoints, and leaves RAM zeroed for the caller to rewrite from
  // its snapshot. Flash is still validated — a corrupted image means the warm path
  // cannot trust the resident code and the board parks kBootFailed.
  void WarmRestore();

  // Runs firmware until a stop condition (see Firmware::Resume). On a faulted/hung/
  // boot-failed board this just burns the quantum with a frozen PC, which is exactly what
  // the host observes on real hardware.
  StopInfo Continue(uint64_t max_steps = kDefaultQuantum);

  uint64_t ReadPC() const;

  // Breakpoints. Addresses inside the coverage-site ("basic block") space consume the
  // board's limited hardware comparators; program-point addresses use software patching
  // and are unlimited.
  Status AddBreakpoint(uint64_t address);
  void RemoveBreakpoint(uint64_t address);
  void ClearBreakpoints();
  size_t breakpoint_count() const { return sw_breakpoints_.size() + hw_breakpoints_.size(); }

  // Drains hardware-breakpoint hits recorded since the last call (addresses, in order).
  std::vector<uint64_t> TakeBreakpointHits();

  // Queues a peripheral event for the firmware (host-side signal generator). Dropped when
  // the queue is saturated; returns false in that case.
  bool InjectPeripheralEvent(const PeripheralEvent& event);

  // Instantaneous current draw in milliamps, as a bench ammeter on the supply rail sees
  // it (§6: power signals for liveness). Healthy execution alternates active/idle draw;
  // a wedged core spins flat-out; a faulted core parks in the fault loop at a constant
  // plateau; a failed boot idles in the ROM.
  uint32_t PowerDrawMilliAmps() const;

  PowerState power_state() const { return power_state_; }
  const std::string& fault_detail() const { return fault_detail_; }
  VirtualClock& clock() { return clock_; }
  uint64_t cycle_count() const { return cycle_count_; }
  uint64_t reset_count() const { return reset_count_; }
  uint64_t warm_restore_count() const { return warm_restore_count_; }

  static constexpr uint64_t kDefaultQuantum = 1 << 20;

 private:
  bool HasAnyBreakpoint(uint64_t address) const {
    return sw_breakpoints_.count(address) != 0 || hw_breakpoints_.count(address) != 0;
  }
  bool InBasicBlockSpace(uint64_t address) const;

  BoardSpec spec_;
  std::vector<uint8_t> ram_;
  Flash flash_;
  Uart uart_;
  VirtualClock clock_;

  std::shared_ptr<const FirmwareImage> image_;
  std::unique_ptr<Firmware> firmware_;

  PowerState power_state_ = PowerState::kOff;
  std::string fault_detail_;

  std::deque<PeripheralEvent> pending_events_;
  std::set<uint64_t> sw_breakpoints_;
  std::set<uint64_t> hw_breakpoints_;
  std::vector<uint64_t> bp_hits_;

  // Synthetic PC bookkeeping.
  uint64_t current_point_ = 0;   // address of the last program point entered
  uint64_t cycles_at_point_ = 0;
  uint64_t frozen_pc_ = 0;       // valid when faulted/hung/boot-failed
  uint64_t cycle_count_ = 0;
  uint64_t reset_count_ = 0;
  uint64_t warm_restore_count_ = 0;
};

}  // namespace eof

#endif  // SRC_HW_BOARD_H_
