#include "src/hw/board_catalog.h"

#include "src/common/strings.h"

namespace eof {
namespace {

std::vector<BoardSpec> BuildCatalog() {
  std::vector<BoardSpec> catalog;

  {
    BoardSpec spec;
    spec.name = "esp32-devkitc";
    spec.arch = Arch::kXtensa;
    spec.clock_mhz = 240;
    spec.ram_bytes = 520 * 1024;
    spec.flash_bytes = 4 * 1024 * 1024;
    spec.flash_base = 0x00000000;
    spec.ram_base = 0x3ffb0000;
    spec.text_base = 0x400d0000;
    spec.max_hw_breakpoints = 2;  // Xtensa LX6 exposes 2 IBREAK units
    spec.peripherals = {Peripheral::kUartHw, Peripheral::kSpiFlash, Peripheral::kGpio,
                        Peripheral::kWifi, Peripheral::kHwTimer, Peripheral::kTrng};
    catalog.push_back(spec);
  }
  {
    BoardSpec spec;
    spec.name = "stm32h745-nucleo";
    spec.arch = Arch::kArm;
    spec.clock_mhz = 480;
    spec.ram_bytes = 1024 * 1024;
    // 2 MiB internal dual-bank flash plus memory-mapped QSPI NOR, presented as one window.
    spec.flash_bytes = 4 * 1024 * 1024;
    spec.flash_base = 0x08000000;
    spec.ram_base = 0x20000000;
    spec.text_base = 0x08010000;
    spec.max_hw_breakpoints = 8;  // Cortex-M7 FPB
    spec.peripherals = {Peripheral::kUartHw, Peripheral::kSpiFlash, Peripheral::kGpio,
                        Peripheral::kCan, Peripheral::kEthernet, Peripheral::kHwTimer,
                        Peripheral::kTrng};
    catalog.push_back(spec);
  }
  {
    BoardSpec spec;
    spec.name = "stm32f407-disco";
    spec.arch = Arch::kArm;
    spec.clock_mhz = 168;
    spec.ram_bytes = 192 * 1024;
    spec.flash_bytes = 1024 * 1024;
    spec.flash_base = 0x08000000;
    spec.ram_base = 0x20000000;
    spec.text_base = 0x08008000;
    spec.max_hw_breakpoints = 6;  // Cortex-M4 FPB
    spec.peripherals = {Peripheral::kUartHw, Peripheral::kGpio, Peripheral::kCan,
                        Peripheral::kHwTimer, Peripheral::kTrng};
    catalog.push_back(spec);
  }
  {
    BoardSpec spec;
    spec.name = "hifive1-revb";
    spec.arch = Arch::kRiscV;
    spec.clock_mhz = 320;
    spec.ram_bytes = 16 * 1024;  // tiny SRAM: exercises the RAM-budget paths
    spec.flash_bytes = 4 * 1024 * 1024;
    spec.flash_base = 0x20000000;
    spec.ram_base = 0x80000000;
    spec.text_base = 0x20010000;
    spec.max_hw_breakpoints = 4;
    spec.peripherals = {Peripheral::kUartHw, Peripheral::kSpiFlash, Peripheral::kGpio};
    catalog.push_back(spec);
  }
  {
    BoardSpec spec;
    spec.name = "qemu-virt-arm";
    spec.arch = Arch::kArm;
    spec.clock_mhz = 400;  // TCG throughput on the host, MMIO traps included
    spec.ram_bytes = 8 * 1024 * 1024;
    spec.flash_bytes = 16 * 1024 * 1024;
    spec.flash_base = 0x08000000;
    spec.ram_base = 0x20000000;
    spec.text_base = 0x08010000;
    spec.max_hw_breakpoints = 32;  // gdbstub breakpoints are plentiful
    spec.emulated = true;
    spec.peripherals = {};  // no peripheral-accurate devices
    catalog.push_back(spec);
  }
  {
    BoardSpec spec;
    spec.name = "qemu-virt-riscv";
    spec.arch = Arch::kRiscV;
    spec.clock_mhz = 400;
    spec.ram_bytes = 8 * 1024 * 1024;
    spec.flash_bytes = 16 * 1024 * 1024;
    spec.flash_base = 0x20000000;
    spec.ram_base = 0x80000000;
    spec.text_base = 0x20010000;
    spec.max_hw_breakpoints = 32;
    spec.emulated = true;
    spec.peripherals = {};
    catalog.push_back(spec);
  }
  return catalog;
}

const std::vector<BoardSpec>& Catalog() {
  static const std::vector<BoardSpec>* catalog = new std::vector<BoardSpec>(BuildCatalog());
  return *catalog;
}

}  // namespace

const char* ArchName(Arch arch) {
  switch (arch) {
    case Arch::kArm:
      return "ARM";
    case Arch::kRiscV:
      return "RISC-V";
    case Arch::kXtensa:
      return "Xtensa";
    case Arch::kMips:
      return "MIPS";
    case Arch::kPowerPc:
      return "PowerPC";
    case Arch::kMsp430:
      return "MSP430";
  }
  return "?";
}

const char* PeripheralName(Peripheral peripheral) {
  switch (peripheral) {
    case Peripheral::kUartHw:
      return "uart";
    case Peripheral::kSpiFlash:
      return "spi-flash";
    case Peripheral::kGpio:
      return "gpio";
    case Peripheral::kCan:
      return "can";
    case Peripheral::kEthernet:
      return "ethernet";
    case Peripheral::kWifi:
      return "wifi";
    case Peripheral::kHwTimer:
      return "hw-timer";
    case Peripheral::kTrng:
      return "trng";
  }
  return "?";
}

std::vector<std::string> KnownBoardNames() {
  std::vector<std::string> names;
  for (const BoardSpec& spec : Catalog()) {
    names.push_back(spec.name);
  }
  return names;
}

Result<BoardSpec> BoardSpecByName(const std::string& name) {
  for (const BoardSpec& spec : Catalog()) {
    if (spec.name == name) {
      return spec;
    }
  }
  return NotFoundError(StrFormat("unknown board '%s'", name.c_str()));
}

Result<std::unique_ptr<Board>> MakeBoard(const std::string& name) {
  ASSIGN_OR_RETURN(BoardSpec spec, BoardSpecByName(name));
  return std::make_unique<Board>(std::move(spec));
}

}  // namespace eof
