// Symbol table of a firmware image. The host extracts this from the build (as the paper
// does with the ELF) and uses it to plant breakpoints at agent program points and OS
// exception handlers, and to locate the mailbox / coverage-ring RAM blocks.

#ifndef SRC_HW_SYMBOLS_H_
#define SRC_HW_SYMBOLS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"

namespace eof {

struct Symbol {
  std::string name;
  uint64_t address = 0;
  uint64_t size = 0;
};

class SymbolTable {
 public:
  // Adds a symbol; duplicate names or overlapping ranges are rejected.
  Status Add(const std::string& name, uint64_t address, uint64_t size);

  // Address of `name`, or NotFoundError.
  Result<uint64_t> AddressOf(const std::string& name) const;

  // Symbol whose [address, address+size) range contains `address`; empty string if none.
  std::string Containing(uint64_t address) const;

  bool Has(const std::string& name) const { return by_name_.count(name) != 0; }

  const std::vector<Symbol>& symbols() const { return symbols_; }

 private:
  std::vector<Symbol> symbols_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace eof

#endif  // SRC_HW_SYMBOLS_H_
