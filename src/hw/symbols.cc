#include "src/hw/symbols.h"

#include "src/common/strings.h"

namespace eof {

Status SymbolTable::Add(const std::string& name, uint64_t address, uint64_t size) {
  if (by_name_.count(name) != 0) {
    return AlreadyExistsError(StrFormat("symbol '%s' already defined", name.c_str()));
  }
  for (const Symbol& sym : symbols_) {
    bool overlap = address < sym.address + sym.size && sym.address < address + size;
    if (overlap && size != 0 && sym.size != 0) {
      return InvalidArgumentError(
          StrFormat("symbol '%s' overlaps '%s'", name.c_str(), sym.name.c_str()));
    }
  }
  by_name_[name] = symbols_.size();
  symbols_.push_back(Symbol{name, address, size});
  return OkStatus();
}

Result<uint64_t> SymbolTable::AddressOf(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return NotFoundError(StrFormat("symbol '%s' not found", name.c_str()));
  }
  return symbols_[it->second].address;
}

std::string SymbolTable::Containing(uint64_t address) const {
  for (const Symbol& sym : symbols_) {
    if (address >= sym.address && address < sym.address + sym.size) {
      return sym.name;
    }
  }
  return "";
}

}  // namespace eof
