// Board state snapshot/restore — the EmbedFuzz-style fast path that replaces the
// Algorithm-1 reflash+reboot tax after crashes and periodic resets.
//
// Capture() runs once per deployment against a healthy post-boot board: one vectored
// DebugPort::RunBatch read plan pulls the whole RAM window across the link in chunks,
// plus the parked program counter and a per-partition flash digest (the "flash
// shadow"). Restore() first proves the flash shadow still matches (a kernel bug that
// scribbled on flash invalidates the resident code, so the warm path must not trust
// it) — gated by the flash controller's write counter so untouched flash costs one
// status-word read, not a whole-image checksum — then performs a warm core restore (DebugPort::WarmRestoreCore — no boot ROM,
// no reflash, kWarmRestoreCost instead of kRebootCost), rewrites RAM from the
// snapshot in ONE batched write, and finishes with a bounded warm-resume handshake
// that parks the agent back in its executor loop.
//
// Any failure along the way returns a non-OK status with the board possibly half
// restored; callers MUST fall back to a full Deployment::ReflashAndReboot in that
// case (src/core/liveness.h wraps exactly that policy).
//
// Provenance warning (the libriscv lesson): a restored board can carry latent state
// a cold boot would not, so bugs first sighted in a snapshot campaign must be
// re-validated against a cold-boot board before they are believed — that oracle
// lives in the campaign scheduler, not here.

#ifndef SRC_HW_BOARD_SNAPSHOT_H_
#define SRC_HW_BOARD_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/hw/debug_port.h"
#include "src/hw/image.h"

namespace eof {

// Chunk size of the vectored RAM read plan. Chunking keeps individual PortOp
// payloads bounded without changing the cost model (RunBatch charges one fixed
// latency per batch plus the per-byte cost of all payloads).
inline constexpr uint64_t kSnapshotChunkBytes = 64 * 1024;

class BoardSnapshot {
 public:
  // Captures RAM, the parked PC, and the flash shadow of a healthy post-boot board.
  // The image must be the one the board currently runs (its partition table names
  // the flash regions worth fingerprinting).
  static Result<BoardSnapshot> Capture(DebugPort& port, const FirmwareImage& image);

  // Restores the captured state: flash-shadow audit, warm core restore, one batched
  // RAM write, warm-resume handshake. The audit is write-generation gated: one cheap
  // flash-controller counter read proves "no flash write since the last audit" and
  // skips the per-partition checksums entirely — the common case on the hot restore
  // path, where re-checksumming a multi-megabyte image would cost more than the
  // restore itself. Any flash write (host reflash or kernel scribble) forces a full
  // re-audit on the next restore. On ANY error the board may be half restored and
  // the caller must fall back to a full reflash+reboot.
  Status Restore(DebugPort& port) const;

  // How many full shadow audits Restore() has run (gating observability for tests).
  uint64_t shadow_audits() const { return shadow_audits_; }

  // Bytes of RAM the snapshot carries (what one Restore() pushes over the link).
  uint64_t ram_bytes() const { return static_cast<uint64_t>(ram_.size()); }
  uint64_t captured_pc() const { return pc_; }

  // Mutable access to the captured RAM image, for tests that poison the snapshot
  // (e.g. planting a mailbox program so every restore replays hidden state).
  std::vector<uint8_t>& ram_for_test() { return ram_; }
  uint64_t ram_base() const { return ram_base_; }

 private:
  struct FlashShadow {
    std::string partition;
    uint64_t address = 0;  // absolute flash-window address of the payload
    uint64_t size = 0;     // payload bytes covered by the digest
    uint64_t digest = 0;
  };

  uint64_t ram_base_ = 0;
  std::vector<uint8_t> ram_;
  uint64_t pc_ = 0;
  std::vector<FlashShadow> flash_shadow_;
  // Flash-controller write count as of the last successful shadow audit (capture
  // counts as one). Restore() mutates these through a const snapshot: the audit
  // cache is observable state of the verification protocol, not of the snapshot.
  mutable uint64_t audited_write_count_ = 0;
  mutable uint64_t shadow_audits_ = 0;
};

}  // namespace eof

#endif  // SRC_HW_BOARD_SNAPSHOT_H_
