// Catalog of the boards used in the paper's evaluation plus the QEMU-style virtual boards
// the emulation-based baselines require. MakeBoard() is the single factory used by
// examples, tests, and benches.

#ifndef SRC_HW_BOARD_CATALOG_H_
#define SRC_HW_BOARD_CATALOG_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/hw/board.h"
#include "src/hw/board_spec.h"

namespace eof {

// Known board identifiers.
//   "esp32-devkitc"   — Xtensa, JTAG, Wi-Fi/UART/SPI peripherals (GDBFuzz comparison board)
//   "stm32h745-nucleo"— ARM Cortex-M7-class, SWD, CAN/ETH (the industrial-control example)
//   "stm32f407-disco" — ARM Cortex-M4-class, SWD
//   "hifive1-revb"    — RISC-V, JTAG
//   "qemu-virt-arm"   — emulated ARM machine: no peripheral-accurate devices, no real
//                       debug-unit limits (Tardis/Gustave run here)
//   "qemu-virt-riscv" — emulated RISC-V machine
std::vector<std::string> KnownBoardNames();

Result<BoardSpec> BoardSpecByName(const std::string& name);

// Constructs a powered-off board of the named type.
Result<std::unique_ptr<Board>> MakeBoard(const std::string& name);

}  // namespace eof

#endif  // SRC_HW_BOARD_CATALOG_H_
