#include "src/hw/image.h"

#include "src/common/byteio.h"
#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/common/strings.h"

namespace eof {
namespace {

constexpr uint32_t kPayloadMagic = 0xe0fb007u;

}  // namespace

std::vector<uint8_t> FirmwareImage::MakePayload(const std::string& name, uint64_t seed,
                                                uint64_t body_bytes) {
  Rng rng(Fnv1a(name, seed));
  std::vector<uint8_t> body(body_bytes);
  for (auto& byte : body) {
    byte = static_cast<uint8_t>(rng.Next());
  }
  ByteWriter writer;
  writer.PutU32(kPayloadMagic);
  writer.PutU32(static_cast<uint32_t>(body.size()));
  writer.PutU64(Fnv1aBytes(body.data(), body.size()));
  writer.PutBytes(body.data(), body.size());
  return writer.TakeBytes();
}

Status FirmwareImage::VerifyPayload(const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  uint32_t magic = reader.GetU32();
  uint32_t len = reader.GetU32();
  uint64_t crc = reader.GetU64();
  if (reader.failed() || magic != kPayloadMagic) {
    return DataLossError("bad payload magic");
  }
  if (len > reader.remaining()) {
    return DataLossError("truncated payload body");
  }
  std::vector<uint8_t> body(len);
  reader.GetBytes(body.data(), body.size());
  if (reader.failed() || Fnv1aBytes(body.data(), body.size()) != crc) {
    return DataLossError("payload checksum mismatch");
  }
  return OkStatus();
}

Status FirmwareImage::AddPartition(const std::string& name, uint64_t offset, uint64_t part_size,
                                   uint64_t body_bytes, uint64_t seed) {
  std::vector<uint8_t> payload = MakePayload(name, seed, body_bytes);
  if (payload.size() > part_size) {
    return InvalidArgumentError(
        StrFormat("payload for '%s' (%zu bytes) exceeds partition size %llu", name.c_str(),
                  payload.size(), static_cast<unsigned long long>(part_size)));
  }
  if (payloads_.count(name) != 0) {
    return AlreadyExistsError(StrFormat("partition '%s' already added", name.c_str()));
  }
  table_.partitions.push_back(Partition{name, offset, part_size});
  payloads_[name] = std::move(payload);
  return OkStatus();
}

Status FirmwareImage::AddRawPartition(const std::string& name, uint64_t offset,
                                      uint64_t part_size) {
  if (payloads_.count(name) != 0 || table_.Find(name) != nullptr) {
    return AlreadyExistsError(StrFormat("partition '%s' already added", name.c_str()));
  }
  table_.partitions.push_back(Partition{name, offset, part_size});
  return OkStatus();
}

Result<ModuleLayout> FirmwareImage::AddModule(const std::string& module, uint64_t bb_count) {
  if (bb_count == 0) {
    return InvalidArgumentError(StrFormat("module '%s' has zero basic blocks", module.c_str()));
  }
  for (const ModuleLayout& layout : modules_) {
    if (layout.module == module) {
      return AlreadyExistsError(StrFormat("module '%s' already declared", module.c_str()));
    }
  }
  if (next_module_base_ == 0) {
    next_module_base_ = code_base_;
  }
  ModuleLayout layout{module, next_module_base_, bb_count};
  next_module_base_ += bb_count * kBasicBlockStride;
  modules_.push_back(layout);
  return layout;
}

Result<ModuleLayout> FirmwareImage::ModuleOf(const std::string& module) const {
  for (const ModuleLayout& layout : modules_) {
    if (layout.module == module) {
      return layout;
    }
  }
  return NotFoundError(StrFormat("module '%s' not declared", module.c_str()));
}

bool FirmwareImage::InCodeSpace(uint64_t address) const {
  for (const ModuleLayout& layout : modules_) {
    if (address >= layout.base && address < layout.base + layout.bb_count * kBasicBlockStride) {
      return true;
    }
  }
  return false;
}

Result<std::vector<uint8_t>> FirmwareImage::PayloadOf(const std::string& partition) const {
  auto it = payloads_.find(partition);
  if (it == payloads_.end()) {
    return NotFoundError(StrFormat("no payload for partition '%s'", partition.c_str()));
  }
  return it->second;
}

Status FirmwareImage::VerifyFlash(const Flash& flash) const {
  for (const Partition& part : table_.partitions) {
    auto payload_it = payloads_.find(part.name);
    if (payload_it == payloads_.end()) {
      continue;
    }
    ASSIGN_OR_RETURN(std::vector<uint8_t> stored,
                     flash.Read(part.offset, payload_it->second.size()));
    Status valid = VerifyPayload(stored);
    if (!valid.ok()) {
      return DataLossError(
          StrFormat("partition '%s' failed boot validation: %s", part.name.c_str(),
                    valid.ToString().c_str()));
    }
    // CRC validity is necessary but not sufficient: the stored body must be the image's.
    if (stored != payload_it->second) {
      return DataLossError(StrFormat("partition '%s' content mismatch", part.name.c_str()));
    }
  }
  return OkStatus();
}

}  // namespace eof
