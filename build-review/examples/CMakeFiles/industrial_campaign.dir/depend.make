# Empty dependencies file for industrial_campaign.
# This may be replaced when dependencies are built.
