file(REMOVE_RECURSE
  "CMakeFiles/industrial_campaign.dir/industrial_campaign.cpp.o"
  "CMakeFiles/industrial_campaign.dir/industrial_campaign.cpp.o.d"
  "industrial_campaign"
  "industrial_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/industrial_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
