# Empty dependencies file for spec_tour.
# This may be replaced when dependencies are built.
