file(REMOVE_RECURSE
  "CMakeFiles/spec_tour.dir/spec_tour.cpp.o"
  "CMakeFiles/spec_tour.dir/spec_tour.cpp.o.d"
  "spec_tour"
  "spec_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
