# Empty dependencies file for crash_triage.
# This may be replaced when dependencies are built.
