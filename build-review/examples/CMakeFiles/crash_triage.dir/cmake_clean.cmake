file(REMOVE_RECURSE
  "CMakeFiles/crash_triage.dir/crash_triage.cpp.o"
  "CMakeFiles/crash_triage.dir/crash_triage.cpp.o.d"
  "crash_triage"
  "crash_triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
