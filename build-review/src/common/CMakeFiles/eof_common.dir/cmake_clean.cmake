file(REMOVE_RECURSE
  "CMakeFiles/eof_common.dir/logging.cc.o"
  "CMakeFiles/eof_common.dir/logging.cc.o.d"
  "CMakeFiles/eof_common.dir/rng.cc.o"
  "CMakeFiles/eof_common.dir/rng.cc.o.d"
  "CMakeFiles/eof_common.dir/status.cc.o"
  "CMakeFiles/eof_common.dir/status.cc.o.d"
  "CMakeFiles/eof_common.dir/strings.cc.o"
  "CMakeFiles/eof_common.dir/strings.cc.o.d"
  "libeof_common.a"
  "libeof_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eof_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
