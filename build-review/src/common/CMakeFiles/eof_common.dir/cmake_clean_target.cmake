file(REMOVE_RECURSE
  "libeof_common.a"
)
