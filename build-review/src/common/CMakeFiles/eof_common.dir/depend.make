# Empty dependencies file for eof_common.
# This may be replaced when dependencies are built.
