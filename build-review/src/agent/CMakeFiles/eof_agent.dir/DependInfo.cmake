
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agent/agent.cc" "src/agent/CMakeFiles/eof_agent.dir/agent.cc.o" "gcc" "src/agent/CMakeFiles/eof_agent.dir/agent.cc.o.d"
  "/root/repo/src/agent/wire.cc" "src/agent/CMakeFiles/eof_agent.dir/wire.cc.o" "gcc" "src/agent/CMakeFiles/eof_agent.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/kernel/CMakeFiles/eof_kernel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hw/CMakeFiles/eof_hw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/eof_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
