# Empty compiler generated dependencies file for eof_agent.
# This may be replaced when dependencies are built.
