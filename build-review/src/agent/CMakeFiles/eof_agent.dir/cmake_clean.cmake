file(REMOVE_RECURSE
  "CMakeFiles/eof_agent.dir/agent.cc.o"
  "CMakeFiles/eof_agent.dir/agent.cc.o.d"
  "CMakeFiles/eof_agent.dir/wire.cc.o"
  "CMakeFiles/eof_agent.dir/wire.cc.o.d"
  "libeof_agent.a"
  "libeof_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eof_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
