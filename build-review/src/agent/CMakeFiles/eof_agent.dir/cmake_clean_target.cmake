file(REMOVE_RECURSE
  "libeof_agent.a"
)
