file(REMOVE_RECURSE
  "libeof_baselines.a"
)
