file(REMOVE_RECURSE
  "CMakeFiles/eof_baselines.dir/baselines.cc.o"
  "CMakeFiles/eof_baselines.dir/baselines.cc.o.d"
  "CMakeFiles/eof_baselines.dir/byte_fuzzer.cc.o"
  "CMakeFiles/eof_baselines.dir/byte_fuzzer.cc.o.d"
  "libeof_baselines.a"
  "libeof_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eof_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
