# Empty dependencies file for eof_baselines.
# This may be replaced when dependencies are built.
