# Empty compiler generated dependencies file for eof_os.
# This may be replaced when dependencies are built.
