file(REMOVE_RECURSE
  "libeof_os.a"
)
