
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/all_oses.cc" "src/os/CMakeFiles/eof_os.dir/all_oses.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/all_oses.cc.o.d"
  "/root/repo/src/os/freertos/event_groups.cc" "src/os/CMakeFiles/eof_os.dir/freertos/event_groups.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/freertos/event_groups.cc.o.d"
  "/root/repo/src/os/freertos/freertos.cc" "src/os/CMakeFiles/eof_os.dir/freertos/freertos.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/freertos/freertos.cc.o.d"
  "/root/repo/src/os/freertos/heap4.cc" "src/os/CMakeFiles/eof_os.dir/freertos/heap4.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/freertos/heap4.cc.o.d"
  "/root/repo/src/os/freertos/partitions.cc" "src/os/CMakeFiles/eof_os.dir/freertos/partitions.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/freertos/partitions.cc.o.d"
  "/root/repo/src/os/freertos/pseudo.cc" "src/os/CMakeFiles/eof_os.dir/freertos/pseudo.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/freertos/pseudo.cc.o.d"
  "/root/repo/src/os/freertos/queue.cc" "src/os/CMakeFiles/eof_os.dir/freertos/queue.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/freertos/queue.cc.o.d"
  "/root/repo/src/os/freertos/stream_buffer.cc" "src/os/CMakeFiles/eof_os.dir/freertos/stream_buffer.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/freertos/stream_buffer.cc.o.d"
  "/root/repo/src/os/freertos/tasks.cc" "src/os/CMakeFiles/eof_os.dir/freertos/tasks.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/freertos/tasks.cc.o.d"
  "/root/repo/src/os/freertos/timers.cc" "src/os/CMakeFiles/eof_os.dir/freertos/timers.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/freertos/timers.cc.o.d"
  "/root/repo/src/os/nuttx/env.cc" "src/os/CMakeFiles/eof_os.dir/nuttx/env.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/nuttx/env.cc.o.d"
  "/root/repo/src/os/nuttx/mqueue.cc" "src/os/CMakeFiles/eof_os.dir/nuttx/mqueue.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/nuttx/mqueue.cc.o.d"
  "/root/repo/src/os/nuttx/nuttx.cc" "src/os/CMakeFiles/eof_os.dir/nuttx/nuttx.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/nuttx/nuttx.cc.o.d"
  "/root/repo/src/os/nuttx/sem.cc" "src/os/CMakeFiles/eof_os.dir/nuttx/sem.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/nuttx/sem.cc.o.d"
  "/root/repo/src/os/nuttx/task.cc" "src/os/CMakeFiles/eof_os.dir/nuttx/task.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/nuttx/task.cc.o.d"
  "/root/repo/src/os/nuttx/time.cc" "src/os/CMakeFiles/eof_os.dir/nuttx/time.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/nuttx/time.cc.o.d"
  "/root/repo/src/os/nuttx/timer.cc" "src/os/CMakeFiles/eof_os.dir/nuttx/timer.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/nuttx/timer.cc.o.d"
  "/root/repo/src/os/pokos/pokos.cc" "src/os/CMakeFiles/eof_os.dir/pokos/pokos.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/pokos/pokos.cc.o.d"
  "/root/repo/src/os/rtthread/device.cc" "src/os/CMakeFiles/eof_os.dir/rtthread/device.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/rtthread/device.cc.o.d"
  "/root/repo/src/os/rtthread/ipc.cc" "src/os/CMakeFiles/eof_os.dir/rtthread/ipc.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/rtthread/ipc.cc.o.d"
  "/root/repo/src/os/rtthread/mempool.cc" "src/os/CMakeFiles/eof_os.dir/rtthread/mempool.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/rtthread/mempool.cc.o.d"
  "/root/repo/src/os/rtthread/object.cc" "src/os/CMakeFiles/eof_os.dir/rtthread/object.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/rtthread/object.cc.o.d"
  "/root/repo/src/os/rtthread/rtthread.cc" "src/os/CMakeFiles/eof_os.dir/rtthread/rtthread.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/rtthread/rtthread.cc.o.d"
  "/root/repo/src/os/rtthread/service.cc" "src/os/CMakeFiles/eof_os.dir/rtthread/service.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/rtthread/service.cc.o.d"
  "/root/repo/src/os/rtthread/smem.cc" "src/os/CMakeFiles/eof_os.dir/rtthread/smem.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/rtthread/smem.cc.o.d"
  "/root/repo/src/os/rtthread/socket.cc" "src/os/CMakeFiles/eof_os.dir/rtthread/socket.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/rtthread/socket.cc.o.d"
  "/root/repo/src/os/rtthread/thread.cc" "src/os/CMakeFiles/eof_os.dir/rtthread/thread.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/rtthread/thread.cc.o.d"
  "/root/repo/src/os/zephyr/fifo.cc" "src/os/CMakeFiles/eof_os.dir/zephyr/fifo.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/zephyr/fifo.cc.o.d"
  "/root/repo/src/os/zephyr/json.cc" "src/os/CMakeFiles/eof_os.dir/zephyr/json.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/zephyr/json.cc.o.d"
  "/root/repo/src/os/zephyr/kheap.cc" "src/os/CMakeFiles/eof_os.dir/zephyr/kheap.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/zephyr/kheap.cc.o.d"
  "/root/repo/src/os/zephyr/msgq.cc" "src/os/CMakeFiles/eof_os.dir/zephyr/msgq.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/zephyr/msgq.cc.o.d"
  "/root/repo/src/os/zephyr/sys_heap.cc" "src/os/CMakeFiles/eof_os.dir/zephyr/sys_heap.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/zephyr/sys_heap.cc.o.d"
  "/root/repo/src/os/zephyr/thread.cc" "src/os/CMakeFiles/eof_os.dir/zephyr/thread.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/zephyr/thread.cc.o.d"
  "/root/repo/src/os/zephyr/zephyr.cc" "src/os/CMakeFiles/eof_os.dir/zephyr/zephyr.cc.o" "gcc" "src/os/CMakeFiles/eof_os.dir/zephyr/zephyr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/apps/CMakeFiles/eof_apps.dir/DependInfo.cmake"
  "/root/repo/build-review/src/kernel/CMakeFiles/eof_kernel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hw/CMakeFiles/eof_hw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/eof_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
