file(REMOVE_RECURSE
  "CMakeFiles/eof_fuzz.dir/byte_mutator.cc.o"
  "CMakeFiles/eof_fuzz.dir/byte_mutator.cc.o.d"
  "CMakeFiles/eof_fuzz.dir/corpus.cc.o"
  "CMakeFiles/eof_fuzz.dir/corpus.cc.o.d"
  "CMakeFiles/eof_fuzz.dir/generator.cc.o"
  "CMakeFiles/eof_fuzz.dir/generator.cc.o.d"
  "CMakeFiles/eof_fuzz.dir/program.cc.o"
  "CMakeFiles/eof_fuzz.dir/program.cc.o.d"
  "CMakeFiles/eof_fuzz.dir/program_text.cc.o"
  "CMakeFiles/eof_fuzz.dir/program_text.cc.o.d"
  "libeof_fuzz.a"
  "libeof_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eof_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
