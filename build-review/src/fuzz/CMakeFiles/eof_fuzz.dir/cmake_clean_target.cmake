file(REMOVE_RECURSE
  "libeof_fuzz.a"
)
