# Empty dependencies file for eof_fuzz.
# This may be replaced when dependencies are built.
