
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fuzz/byte_mutator.cc" "src/fuzz/CMakeFiles/eof_fuzz.dir/byte_mutator.cc.o" "gcc" "src/fuzz/CMakeFiles/eof_fuzz.dir/byte_mutator.cc.o.d"
  "/root/repo/src/fuzz/corpus.cc" "src/fuzz/CMakeFiles/eof_fuzz.dir/corpus.cc.o" "gcc" "src/fuzz/CMakeFiles/eof_fuzz.dir/corpus.cc.o.d"
  "/root/repo/src/fuzz/generator.cc" "src/fuzz/CMakeFiles/eof_fuzz.dir/generator.cc.o" "gcc" "src/fuzz/CMakeFiles/eof_fuzz.dir/generator.cc.o.d"
  "/root/repo/src/fuzz/program.cc" "src/fuzz/CMakeFiles/eof_fuzz.dir/program.cc.o" "gcc" "src/fuzz/CMakeFiles/eof_fuzz.dir/program.cc.o.d"
  "/root/repo/src/fuzz/program_text.cc" "src/fuzz/CMakeFiles/eof_fuzz.dir/program_text.cc.o" "gcc" "src/fuzz/CMakeFiles/eof_fuzz.dir/program_text.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/spec/CMakeFiles/eof_spec.dir/DependInfo.cmake"
  "/root/repo/build-review/src/agent/CMakeFiles/eof_agent.dir/DependInfo.cmake"
  "/root/repo/build-review/src/kernel/CMakeFiles/eof_kernel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/eof_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hw/CMakeFiles/eof_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
