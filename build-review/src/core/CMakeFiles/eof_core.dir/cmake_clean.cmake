file(REMOVE_RECURSE
  "CMakeFiles/eof_core.dir/board_farm.cc.o"
  "CMakeFiles/eof_core.dir/board_farm.cc.o.d"
  "CMakeFiles/eof_core.dir/bug_catalog.cc.o"
  "CMakeFiles/eof_core.dir/bug_catalog.cc.o.d"
  "CMakeFiles/eof_core.dir/campaign.cc.o"
  "CMakeFiles/eof_core.dir/campaign.cc.o.d"
  "CMakeFiles/eof_core.dir/deployment.cc.o"
  "CMakeFiles/eof_core.dir/deployment.cc.o.d"
  "CMakeFiles/eof_core.dir/executor.cc.o"
  "CMakeFiles/eof_core.dir/executor.cc.o.d"
  "CMakeFiles/eof_core.dir/fuzzer.cc.o"
  "CMakeFiles/eof_core.dir/fuzzer.cc.o.d"
  "CMakeFiles/eof_core.dir/image_builder.cc.o"
  "CMakeFiles/eof_core.dir/image_builder.cc.o.d"
  "CMakeFiles/eof_core.dir/liveness.cc.o"
  "CMakeFiles/eof_core.dir/liveness.cc.o.d"
  "CMakeFiles/eof_core.dir/monitors.cc.o"
  "CMakeFiles/eof_core.dir/monitors.cc.o.d"
  "CMakeFiles/eof_core.dir/replay.cc.o"
  "CMakeFiles/eof_core.dir/replay.cc.o.d"
  "CMakeFiles/eof_core.dir/scheduler.cc.o"
  "CMakeFiles/eof_core.dir/scheduler.cc.o.d"
  "libeof_core.a"
  "libeof_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eof_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
