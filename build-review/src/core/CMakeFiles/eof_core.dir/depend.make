# Empty dependencies file for eof_core.
# This may be replaced when dependencies are built.
