file(REMOVE_RECURSE
  "libeof_core.a"
)
