
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/board_farm.cc" "src/core/CMakeFiles/eof_core.dir/board_farm.cc.o" "gcc" "src/core/CMakeFiles/eof_core.dir/board_farm.cc.o.d"
  "/root/repo/src/core/bug_catalog.cc" "src/core/CMakeFiles/eof_core.dir/bug_catalog.cc.o" "gcc" "src/core/CMakeFiles/eof_core.dir/bug_catalog.cc.o.d"
  "/root/repo/src/core/campaign.cc" "src/core/CMakeFiles/eof_core.dir/campaign.cc.o" "gcc" "src/core/CMakeFiles/eof_core.dir/campaign.cc.o.d"
  "/root/repo/src/core/deployment.cc" "src/core/CMakeFiles/eof_core.dir/deployment.cc.o" "gcc" "src/core/CMakeFiles/eof_core.dir/deployment.cc.o.d"
  "/root/repo/src/core/executor.cc" "src/core/CMakeFiles/eof_core.dir/executor.cc.o" "gcc" "src/core/CMakeFiles/eof_core.dir/executor.cc.o.d"
  "/root/repo/src/core/fuzzer.cc" "src/core/CMakeFiles/eof_core.dir/fuzzer.cc.o" "gcc" "src/core/CMakeFiles/eof_core.dir/fuzzer.cc.o.d"
  "/root/repo/src/core/image_builder.cc" "src/core/CMakeFiles/eof_core.dir/image_builder.cc.o" "gcc" "src/core/CMakeFiles/eof_core.dir/image_builder.cc.o.d"
  "/root/repo/src/core/liveness.cc" "src/core/CMakeFiles/eof_core.dir/liveness.cc.o" "gcc" "src/core/CMakeFiles/eof_core.dir/liveness.cc.o.d"
  "/root/repo/src/core/monitors.cc" "src/core/CMakeFiles/eof_core.dir/monitors.cc.o" "gcc" "src/core/CMakeFiles/eof_core.dir/monitors.cc.o.d"
  "/root/repo/src/core/replay.cc" "src/core/CMakeFiles/eof_core.dir/replay.cc.o" "gcc" "src/core/CMakeFiles/eof_core.dir/replay.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/eof_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/eof_core.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/fuzz/CMakeFiles/eof_fuzz.dir/DependInfo.cmake"
  "/root/repo/build-review/src/spec/CMakeFiles/eof_spec.dir/DependInfo.cmake"
  "/root/repo/build-review/src/agent/CMakeFiles/eof_agent.dir/DependInfo.cmake"
  "/root/repo/build-review/src/os/CMakeFiles/eof_os.dir/DependInfo.cmake"
  "/root/repo/build-review/src/kernel/CMakeFiles/eof_kernel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hw/CMakeFiles/eof_hw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/eof_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/apps/CMakeFiles/eof_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
