
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/board.cc" "src/hw/CMakeFiles/eof_hw.dir/board.cc.o" "gcc" "src/hw/CMakeFiles/eof_hw.dir/board.cc.o.d"
  "/root/repo/src/hw/board_catalog.cc" "src/hw/CMakeFiles/eof_hw.dir/board_catalog.cc.o" "gcc" "src/hw/CMakeFiles/eof_hw.dir/board_catalog.cc.o.d"
  "/root/repo/src/hw/debug_port.cc" "src/hw/CMakeFiles/eof_hw.dir/debug_port.cc.o" "gcc" "src/hw/CMakeFiles/eof_hw.dir/debug_port.cc.o.d"
  "/root/repo/src/hw/flash.cc" "src/hw/CMakeFiles/eof_hw.dir/flash.cc.o" "gcc" "src/hw/CMakeFiles/eof_hw.dir/flash.cc.o.d"
  "/root/repo/src/hw/image.cc" "src/hw/CMakeFiles/eof_hw.dir/image.cc.o" "gcc" "src/hw/CMakeFiles/eof_hw.dir/image.cc.o.d"
  "/root/repo/src/hw/stop_info.cc" "src/hw/CMakeFiles/eof_hw.dir/stop_info.cc.o" "gcc" "src/hw/CMakeFiles/eof_hw.dir/stop_info.cc.o.d"
  "/root/repo/src/hw/symbols.cc" "src/hw/CMakeFiles/eof_hw.dir/symbols.cc.o" "gcc" "src/hw/CMakeFiles/eof_hw.dir/symbols.cc.o.d"
  "/root/repo/src/hw/uart.cc" "src/hw/CMakeFiles/eof_hw.dir/uart.cc.o" "gcc" "src/hw/CMakeFiles/eof_hw.dir/uart.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/eof_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
