file(REMOVE_RECURSE
  "libeof_hw.a"
)
