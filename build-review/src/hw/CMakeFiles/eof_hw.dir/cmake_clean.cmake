file(REMOVE_RECURSE
  "CMakeFiles/eof_hw.dir/board.cc.o"
  "CMakeFiles/eof_hw.dir/board.cc.o.d"
  "CMakeFiles/eof_hw.dir/board_catalog.cc.o"
  "CMakeFiles/eof_hw.dir/board_catalog.cc.o.d"
  "CMakeFiles/eof_hw.dir/debug_port.cc.o"
  "CMakeFiles/eof_hw.dir/debug_port.cc.o.d"
  "CMakeFiles/eof_hw.dir/flash.cc.o"
  "CMakeFiles/eof_hw.dir/flash.cc.o.d"
  "CMakeFiles/eof_hw.dir/image.cc.o"
  "CMakeFiles/eof_hw.dir/image.cc.o.d"
  "CMakeFiles/eof_hw.dir/stop_info.cc.o"
  "CMakeFiles/eof_hw.dir/stop_info.cc.o.d"
  "CMakeFiles/eof_hw.dir/symbols.cc.o"
  "CMakeFiles/eof_hw.dir/symbols.cc.o.d"
  "CMakeFiles/eof_hw.dir/uart.cc.o"
  "CMakeFiles/eof_hw.dir/uart.cc.o.d"
  "libeof_hw.a"
  "libeof_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eof_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
