# Empty dependencies file for eof_hw.
# This may be replaced when dependencies are built.
