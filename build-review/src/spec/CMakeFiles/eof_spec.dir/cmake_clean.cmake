file(REMOVE_RECURSE
  "CMakeFiles/eof_spec.dir/compiler.cc.o"
  "CMakeFiles/eof_spec.dir/compiler.cc.o.d"
  "CMakeFiles/eof_spec.dir/emitter.cc.o"
  "CMakeFiles/eof_spec.dir/emitter.cc.o.d"
  "CMakeFiles/eof_spec.dir/lexer.cc.o"
  "CMakeFiles/eof_spec.dir/lexer.cc.o.d"
  "CMakeFiles/eof_spec.dir/parser.cc.o"
  "CMakeFiles/eof_spec.dir/parser.cc.o.d"
  "CMakeFiles/eof_spec.dir/spec_miner.cc.o"
  "CMakeFiles/eof_spec.dir/spec_miner.cc.o.d"
  "libeof_spec.a"
  "libeof_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eof_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
