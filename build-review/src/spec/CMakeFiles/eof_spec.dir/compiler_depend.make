# Empty compiler generated dependencies file for eof_spec.
# This may be replaced when dependencies are built.
