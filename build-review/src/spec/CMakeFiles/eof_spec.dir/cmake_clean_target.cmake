file(REMOVE_RECURSE
  "libeof_spec.a"
)
