
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spec/compiler.cc" "src/spec/CMakeFiles/eof_spec.dir/compiler.cc.o" "gcc" "src/spec/CMakeFiles/eof_spec.dir/compiler.cc.o.d"
  "/root/repo/src/spec/emitter.cc" "src/spec/CMakeFiles/eof_spec.dir/emitter.cc.o" "gcc" "src/spec/CMakeFiles/eof_spec.dir/emitter.cc.o.d"
  "/root/repo/src/spec/lexer.cc" "src/spec/CMakeFiles/eof_spec.dir/lexer.cc.o" "gcc" "src/spec/CMakeFiles/eof_spec.dir/lexer.cc.o.d"
  "/root/repo/src/spec/parser.cc" "src/spec/CMakeFiles/eof_spec.dir/parser.cc.o" "gcc" "src/spec/CMakeFiles/eof_spec.dir/parser.cc.o.d"
  "/root/repo/src/spec/spec_miner.cc" "src/spec/CMakeFiles/eof_spec.dir/spec_miner.cc.o" "gcc" "src/spec/CMakeFiles/eof_spec.dir/spec_miner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/kernel/CMakeFiles/eof_kernel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/eof_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hw/CMakeFiles/eof_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
