
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/api.cc" "src/kernel/CMakeFiles/eof_kernel.dir/api.cc.o" "gcc" "src/kernel/CMakeFiles/eof_kernel.dir/api.cc.o.d"
  "/root/repo/src/kernel/kernel_context.cc" "src/kernel/CMakeFiles/eof_kernel.dir/kernel_context.cc.o" "gcc" "src/kernel/CMakeFiles/eof_kernel.dir/kernel_context.cc.o.d"
  "/root/repo/src/kernel/os.cc" "src/kernel/CMakeFiles/eof_kernel.dir/os.cc.o" "gcc" "src/kernel/CMakeFiles/eof_kernel.dir/os.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/hw/CMakeFiles/eof_hw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/eof_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
