file(REMOVE_RECURSE
  "CMakeFiles/eof_kernel.dir/api.cc.o"
  "CMakeFiles/eof_kernel.dir/api.cc.o.d"
  "CMakeFiles/eof_kernel.dir/kernel_context.cc.o"
  "CMakeFiles/eof_kernel.dir/kernel_context.cc.o.d"
  "CMakeFiles/eof_kernel.dir/os.cc.o"
  "CMakeFiles/eof_kernel.dir/os.cc.o.d"
  "libeof_kernel.a"
  "libeof_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eof_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
