# Empty compiler generated dependencies file for eof_kernel.
# This may be replaced when dependencies are built.
