file(REMOVE_RECURSE
  "libeof_kernel.a"
)
