file(REMOVE_RECURSE
  "libeof_apps.a"
)
