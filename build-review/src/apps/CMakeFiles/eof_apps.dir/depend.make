# Empty dependencies file for eof_apps.
# This may be replaced when dependencies are built.
