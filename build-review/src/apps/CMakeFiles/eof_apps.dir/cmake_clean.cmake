file(REMOVE_RECURSE
  "CMakeFiles/eof_apps.dir/http_server.cc.o"
  "CMakeFiles/eof_apps.dir/http_server.cc.o.d"
  "CMakeFiles/eof_apps.dir/json_component.cc.o"
  "CMakeFiles/eof_apps.dir/json_component.cc.o.d"
  "CMakeFiles/eof_apps.dir/register.cc.o"
  "CMakeFiles/eof_apps.dir/register.cc.o.d"
  "libeof_apps.a"
  "libeof_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eof_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
