
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/http_server.cc" "src/apps/CMakeFiles/eof_apps.dir/http_server.cc.o" "gcc" "src/apps/CMakeFiles/eof_apps.dir/http_server.cc.o.d"
  "/root/repo/src/apps/json_component.cc" "src/apps/CMakeFiles/eof_apps.dir/json_component.cc.o" "gcc" "src/apps/CMakeFiles/eof_apps.dir/json_component.cc.o.d"
  "/root/repo/src/apps/register.cc" "src/apps/CMakeFiles/eof_apps.dir/register.cc.o" "gcc" "src/apps/CMakeFiles/eof_apps.dir/register.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/kernel/CMakeFiles/eof_kernel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/eof_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hw/CMakeFiles/eof_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
