file(REMOVE_RECURSE
  "CMakeFiles/handle_table_model_test.dir/kernel/handle_table_model_test.cc.o"
  "CMakeFiles/handle_table_model_test.dir/kernel/handle_table_model_test.cc.o.d"
  "handle_table_model_test"
  "handle_table_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handle_table_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
