file(REMOVE_RECURSE
  "CMakeFiles/image_builder_test.dir/core/image_builder_test.cc.o"
  "CMakeFiles/image_builder_test.dir/core/image_builder_test.cc.o.d"
  "image_builder_test"
  "image_builder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
