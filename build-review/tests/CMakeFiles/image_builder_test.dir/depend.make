# Empty dependencies file for image_builder_test.
# This may be replaced when dependencies are built.
