file(REMOVE_RECURSE
  "CMakeFiles/power_probe_test.dir/core/power_probe_test.cc.o"
  "CMakeFiles/power_probe_test.dir/core/power_probe_test.cc.o.d"
  "power_probe_test"
  "power_probe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_probe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
