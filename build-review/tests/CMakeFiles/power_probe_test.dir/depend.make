# Empty dependencies file for power_probe_test.
# This may be replaced when dependencies are built.
