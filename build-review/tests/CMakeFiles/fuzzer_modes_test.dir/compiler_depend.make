# Empty compiler generated dependencies file for fuzzer_modes_test.
# This may be replaced when dependencies are built.
