file(REMOVE_RECURSE
  "CMakeFiles/fuzzer_modes_test.dir/core/fuzzer_modes_test.cc.o"
  "CMakeFiles/fuzzer_modes_test.dir/core/fuzzer_modes_test.cc.o.d"
  "fuzzer_modes_test"
  "fuzzer_modes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzer_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
