file(REMOVE_RECURSE
  "CMakeFiles/fuzzer_smoke_test.dir/core/fuzzer_smoke_test.cc.o"
  "CMakeFiles/fuzzer_smoke_test.dir/core/fuzzer_smoke_test.cc.o.d"
  "fuzzer_smoke_test"
  "fuzzer_smoke_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzer_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
