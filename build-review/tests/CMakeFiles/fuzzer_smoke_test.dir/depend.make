# Empty dependencies file for fuzzer_smoke_test.
# This may be replaced when dependencies are built.
