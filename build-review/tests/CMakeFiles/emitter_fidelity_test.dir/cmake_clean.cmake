file(REMOVE_RECURSE
  "CMakeFiles/emitter_fidelity_test.dir/spec/emitter_fidelity_test.cc.o"
  "CMakeFiles/emitter_fidelity_test.dir/spec/emitter_fidelity_test.cc.o.d"
  "emitter_fidelity_test"
  "emitter_fidelity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emitter_fidelity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
