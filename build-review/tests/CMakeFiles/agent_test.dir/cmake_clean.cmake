file(REMOVE_RECURSE
  "CMakeFiles/agent_test.dir/agent/agent_test.cc.o"
  "CMakeFiles/agent_test.dir/agent/agent_test.cc.o.d"
  "agent_test"
  "agent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
