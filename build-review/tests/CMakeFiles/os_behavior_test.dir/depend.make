# Empty dependencies file for os_behavior_test.
# This may be replaced when dependencies are built.
