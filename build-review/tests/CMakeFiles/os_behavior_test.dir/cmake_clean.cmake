file(REMOVE_RECURSE
  "CMakeFiles/os_behavior_test.dir/os/os_behavior_test.cc.o"
  "CMakeFiles/os_behavior_test.dir/os/os_behavior_test.cc.o.d"
  "os_behavior_test"
  "os_behavior_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
