# Empty dependencies file for spec_pipeline_test.
# This may be replaced when dependencies are built.
