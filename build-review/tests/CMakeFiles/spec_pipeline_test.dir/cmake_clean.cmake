file(REMOVE_RECURSE
  "CMakeFiles/spec_pipeline_test.dir/spec/spec_pipeline_test.cc.o"
  "CMakeFiles/spec_pipeline_test.dir/spec/spec_pipeline_test.cc.o.d"
  "spec_pipeline_test"
  "spec_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
