file(REMOVE_RECURSE
  "CMakeFiles/bug_trigger_test.dir/os/bug_trigger_test.cc.o"
  "CMakeFiles/bug_trigger_test.dir/os/bug_trigger_test.cc.o.d"
  "bug_trigger_test"
  "bug_trigger_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bug_trigger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
