# Empty dependencies file for bug_trigger_test.
# This may be replaced when dependencies are built.
