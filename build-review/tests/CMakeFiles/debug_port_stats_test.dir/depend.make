# Empty dependencies file for debug_port_stats_test.
# This may be replaced when dependencies are built.
