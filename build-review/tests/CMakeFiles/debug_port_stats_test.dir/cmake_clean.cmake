file(REMOVE_RECURSE
  "CMakeFiles/debug_port_stats_test.dir/hw/debug_port_stats_test.cc.o"
  "CMakeFiles/debug_port_stats_test.dir/hw/debug_port_stats_test.cc.o.d"
  "debug_port_stats_test"
  "debug_port_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_port_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
