file(REMOVE_RECURSE
  "CMakeFiles/peripheral_events_test.dir/hw/peripheral_events_test.cc.o"
  "CMakeFiles/peripheral_events_test.dir/hw/peripheral_events_test.cc.o.d"
  "peripheral_events_test"
  "peripheral_events_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peripheral_events_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
