# Empty compiler generated dependencies file for peripheral_events_test.
# This may be replaced when dependencies are built.
