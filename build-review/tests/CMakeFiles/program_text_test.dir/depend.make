# Empty dependencies file for program_text_test.
# This may be replaced when dependencies are built.
