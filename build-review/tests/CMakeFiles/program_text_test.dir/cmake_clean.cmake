file(REMOVE_RECURSE
  "CMakeFiles/program_text_test.dir/fuzz/program_text_test.cc.o"
  "CMakeFiles/program_text_test.dir/fuzz/program_text_test.cc.o.d"
  "program_text_test"
  "program_text_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/program_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
