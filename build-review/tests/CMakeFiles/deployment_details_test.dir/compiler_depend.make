# Empty compiler generated dependencies file for deployment_details_test.
# This may be replaced when dependencies are built.
