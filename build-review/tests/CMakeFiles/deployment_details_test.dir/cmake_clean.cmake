file(REMOVE_RECURSE
  "CMakeFiles/deployment_details_test.dir/core/deployment_details_test.cc.o"
  "CMakeFiles/deployment_details_test.dir/core/deployment_details_test.cc.o.d"
  "deployment_details_test"
  "deployment_details_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_details_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
