# Empty dependencies file for monitors_liveness_test.
# This may be replaced when dependencies are built.
