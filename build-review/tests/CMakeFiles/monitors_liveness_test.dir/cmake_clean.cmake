file(REMOVE_RECURSE
  "CMakeFiles/monitors_liveness_test.dir/core/monitors_liveness_test.cc.o"
  "CMakeFiles/monitors_liveness_test.dir/core/monitors_liveness_test.cc.o.d"
  "monitors_liveness_test"
  "monitors_liveness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitors_liveness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
