# Empty compiler generated dependencies file for bench_sec55_overhead.
# This may be replaced when dependencies are built.
