# Empty dependencies file for bench_fig7_growth.
# This may be replaced when dependencies are built.
