
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_growth.cc" "bench/CMakeFiles/bench_fig7_growth.dir/bench_fig7_growth.cc.o" "gcc" "bench/CMakeFiles/bench_fig7_growth.dir/bench_fig7_growth.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/baselines/CMakeFiles/eof_baselines.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/eof_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/fuzz/CMakeFiles/eof_fuzz.dir/DependInfo.cmake"
  "/root/repo/build-review/src/spec/CMakeFiles/eof_spec.dir/DependInfo.cmake"
  "/root/repo/build-review/src/agent/CMakeFiles/eof_agent.dir/DependInfo.cmake"
  "/root/repo/build-review/src/os/CMakeFiles/eof_os.dir/DependInfo.cmake"
  "/root/repo/build-review/src/apps/CMakeFiles/eof_apps.dir/DependInfo.cmake"
  "/root/repo/build-review/src/kernel/CMakeFiles/eof_kernel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hw/CMakeFiles/eof_hw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/eof_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
