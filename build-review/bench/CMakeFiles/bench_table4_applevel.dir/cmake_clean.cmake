file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_applevel.dir/bench_table4_applevel.cc.o"
  "CMakeFiles/bench_table4_applevel.dir/bench_table4_applevel.cc.o.d"
  "bench_table4_applevel"
  "bench_table4_applevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_applevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
