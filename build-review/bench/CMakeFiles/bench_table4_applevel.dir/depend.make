# Empty dependencies file for bench_table4_applevel.
# This may be replaced when dependencies are built.
