# Empty compiler generated dependencies file for bench_table3_coverage.
# This may be replaced when dependencies are built.
