file(REMOVE_RECURSE
  "CMakeFiles/bench_port_batching.dir/bench_port_batching.cc.o"
  "CMakeFiles/bench_port_batching.dir/bench_port_batching.cc.o.d"
  "bench_port_batching"
  "bench_port_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_port_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
