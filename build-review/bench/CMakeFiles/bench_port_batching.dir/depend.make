# Empty dependencies file for bench_port_batching.
# This may be replaced when dependencies are built.
