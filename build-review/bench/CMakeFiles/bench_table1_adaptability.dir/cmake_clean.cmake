file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_adaptability.dir/bench_table1_adaptability.cc.o"
  "CMakeFiles/bench_table1_adaptability.dir/bench_table1_adaptability.cc.o.d"
  "bench_table1_adaptability"
  "bench_table1_adaptability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_adaptability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
