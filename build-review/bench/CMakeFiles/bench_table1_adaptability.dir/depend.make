# Empty dependencies file for bench_table1_adaptability.
# This may be replaced when dependencies are built.
