file(REMOVE_RECURSE
  "CMakeFiles/bench_farm_scaling.dir/bench_farm_scaling.cc.o"
  "CMakeFiles/bench_farm_scaling.dir/bench_farm_scaling.cc.o.d"
  "bench_farm_scaling"
  "bench_farm_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_farm_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
