# Empty dependencies file for bench_farm_scaling.
# This may be replaced when dependencies are built.
