file(REMOVE_RECURSE
  "CMakeFiles/eof.dir/eof_cli.cc.o"
  "CMakeFiles/eof.dir/eof_cli.cc.o.d"
  "eof"
  "eof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
