# Empty compiler generated dependencies file for eof.
# This may be replaced when dependencies are built.
