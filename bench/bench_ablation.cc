// Ablation benches for the design choices DESIGN.md calls out:
//   A. Liveness watchdogs (Algorithm 1) on vs off — off models "manual intervention":
//      a wedged board wastes 30 virtual minutes before a human reflashes it.
//   B. Bug monitors: full (log + exception) vs timeout-only (the Tardis detection model):
//      what fraction of triggered bugs is actually *identified*.
//   C. API-aware generation vs byte-buffer syscall tapes on the same target and budget
//      (the GUSTAVE comparison, isolated from the emulation question).

#include <cstdio>

#include "src/baselines/byte_fuzzer.h"
#include "src/core/campaign.h"
#include "src/core/fuzzer.h"
#include "src/os/all_oses.h"

using namespace eof;

int main() {
  if (!RegisterAllOses().ok()) {
    fprintf(stderr, "OS registration failed\n");
    return 1;
  }
  VirtualDuration budget = ScaledCampaignBudget() / 4;
  if (budget < 30 * kVirtualMinute) {
    budget = 30 * kVirtualMinute;
  }
  printf("=== Ablations (%llu virtual min per campaign) ===\n\n",
         static_cast<unsigned long long>(budget / kVirtualMinute));

  // --- A: watchdogs (plus the §6 power-probe variant) ---
  printf("--- A. liveness watchdogs (rtthread: stall-heavy target) ---\n");
  for (int mode = 0; mode < 3; ++mode) {
    FuzzerConfig config;
    config.os_name = "rtthread";
    config.seed = 501;
    config.budget = budget;
    config.watchdogs = mode != 2;
    config.power_probe = mode == 1;
    EofFuzzer fuzzer(config);
    auto result = fuzzer.Run();
    if (!result.ok()) {
      fprintf(stderr, "ablation A: %s\n", result.status().ToString().c_str());
      return 1;
    }
    const char* label = mode == 0 ? "on" : mode == 1 ? "on+power" : "off";
    printf("  watchdogs=%-9s execs=%-8llu coverage=%-6llu restores=%llu\n", label,
           (unsigned long long)result.value().execs,
           (unsigned long long)result.value().final_coverage,
           (unsigned long long)result.value().restores);
  }

  // --- B: monitors ---
  printf("\n--- B. bug monitors (zephyr): identified bugs ---\n");
  for (int mode = 0; mode < 2; ++mode) {
    FuzzerConfig config;
    config.os_name = "zephyr";
    config.seed = 502;
    config.budget = budget;
    if (mode == 1) {
      config.log_monitor = false;
      config.exception_monitor = false;  // timeout-only detection
    }
    EofFuzzer fuzzer(config);
    auto result = fuzzer.Run();
    if (!result.ok()) {
      fprintf(stderr, "ablation B: %s\n", result.status().ToString().c_str());
      return 1;
    }
    size_t identified = 0;
    for (const BugReport& bug : result.value().bugs) {
      if (bug.catalog_id != 0) {
        ++identified;
      }
    }
    printf("  monitors=%-13s crash/stall events=%-6llu identified bugs=%zu\n",
           mode == 0 ? "log+exception" : "timeout-only",
           (unsigned long long)(result.value().crashes + result.value().stalls),
           identified);
  }

  // --- C: generation strategy on PoKOS, same board/budget ---
  printf("\n--- C. API-aware vs byte-buffer generation (pokos on hifive1) ---\n");
  {
    FuzzerConfig api_aware;
    api_aware.os_name = "pokos";
    api_aware.seed = 503;
    api_aware.budget = budget;
    EofFuzzer fuzzer(api_aware);
    auto result = fuzzer.Run();
    if (result.ok()) {
      printf("  api-aware    coverage=%-6llu execs=%llu\n",
             (unsigned long long)result.value().final_coverage,
             (unsigned long long)result.value().execs);
    }
  }
  {
    ByteFuzzerConfig tape;
    tape.mode = ByteFuzzerMode::kGustave;
    tape.os_name = "pokos";
    tape.board_name = "hifive1-revb";  // same hardware as the API-aware run
    tape.seed = 503;
    tape.budget = budget;
    ByteFuzzer fuzzer(tape);
    auto result = fuzzer.Run();
    if (result.ok()) {
      printf("  byte-tape    coverage=%-6llu execs=%llu\n",
             (unsigned long long)result.value().final_coverage,
             (unsigned long long)result.value().execs);
    }
  }
  // --- D: peripheral event injection (the §6 extension) ---
  printf("\n--- D. peripheral event injection (freertos): interrupt-path coverage ---\n");
  for (bool inject : {false, true}) {
    FuzzerConfig config;
    config.os_name = "freertos";
    config.seed = 504;
    config.budget = budget;
    config.inject_peripheral_events = inject;
    EofFuzzer fuzzer(config);
    auto result = fuzzer.Run();
    if (result.ok()) {
      printf("  events=%-4s coverage=%llu\n", inject ? "on" : "off",
             (unsigned long long)result.value().final_coverage);
    }
  }
  printf("\nExpected: watchdogs recover throughput; timeout-only identifies ~0 bugs; "
         "API-aware generation out-covers byte tapes; event injection adds ISR-path "
         "coverage.\n");
  return 0;
}
