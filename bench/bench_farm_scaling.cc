// Board-farm scaling bench: one FreeRTOS campaign fanned out over 1/2/4 simulated
// boards. Since every board burns the same virtual budget concurrently — exactly as
// racked physical boards would — campaign throughput (execs per virtual campaign
// hour) must rise monotonically with the worker count; host-side wall throughput is
// reported alongside to expose the engine's own parallel efficiency.
//
// Also verifies the layering refactor's determinism contract: a --jobs 1 farm
// campaign must bit-match the legacy single-threaded EofFuzzer::Run() series.
//
// With --metrics-out=PATH, each worker-count run streams its telemetry journal to
// PATH with ".jobsN" spliced in before the extension (farm.jsonl -> farm.jobs2.jsonl),
// so CI archives one JSONL per point of the scaling curve.
//
// --fleet switches to the process-sharded mode: an in-process orchestrator
// serves 1/2/4/8 `--fleet-worker` subprocesses (self-exec'd copies of this
// binary) over TCP localhost, 8 boards per worker — 64 boards at the top end.
// Campaign throughput is execs per virtual hour of the campaign window, so the
// curve measures the fleet plumbing (lease grants, sync merges, wire codecs),
// not the host's core count. The run writes BENCH_fleet_scaling.json and exits
// non-zero when parallel efficiency at 8 workers drops below 0.85.

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/core/board_farm.h"
#include "src/core/campaign.h"
#include "src/fleet/orchestrator.h"
#include "src/fleet/transport.h"
#include "src/fleet/worker.h"
#include "src/os/all_oses.h"

using namespace eof;

namespace {

// farm.jsonl + 2 -> farm.jobs2.jsonl (no extension: appended).
std::string MetricsPathForJobs(const std::string& base, int jobs) {
  std::string suffix = ".jobs" + std::to_string(jobs);
  size_t dot = base.rfind('.');
  if (dot == std::string::npos || dot == 0) {
    return base + suffix;
  }
  return base.substr(0, dot) + suffix + base.substr(dot);
}

bool SeriesMatch(const CampaignResult& a, const CampaignResult& b) {
  if (a.series.size() != b.series.size() || a.final_coverage != b.final_coverage ||
      a.execs != b.execs) {
    return false;
  }
  for (size_t i = 0; i < a.series.size(); ++i) {
    if (a.series[i].time != b.series[i].time ||
        a.series[i].coverage != b.series[i].coverage) {
      return false;
    }
  }
  return true;
}

constexpr int kBoardsPerWorker = 8;
constexpr double kEfficiencyGate = 0.85;

// The per-board budget for the fleet sweep. A notch below the in-process
// section's: the top point runs 64 concurrent board sessions, and the sweep
// cares about merge/lease overhead, not campaign length.
VirtualDuration FleetBudget() { return ScaledCampaignBudget() / 8; }

FuzzerConfig FleetConfig() {
  FuzzerConfig config;
  config.os_name = "freertos";
  config.seed = 1;
  config.budget = FleetBudget();
  config.sample_points = 24;
  return config;
}

// Subprocess entry: `bench_farm_scaling --fleet-worker PORT` connects to the
// in-process orchestrator on localhost and serves lease batches until the
// campaign drains. Exec'd from RunFleetPoint, never invoked by hand.
int RunFleetWorkerChild(const char* port_arg, const char* name_arg) {
  unsigned long port = strtoul(port_arg, nullptr, 10);
  if (port == 0 || port > 65535) {
    fprintf(stderr, "--fleet-worker: bad port '%s'\n", port_arg);
    return 1;
  }
  auto transport = fleet::ConnectTcp("127.0.0.1", static_cast<uint16_t>(port));
  if (!transport.ok()) {
    fprintf(stderr, "%s: connect failed: %s\n", name_arg,
            transport.status().ToString().c_str());
    return 1;
  }
  fleet::FleetWorker::Options options;
  options.name = name_arg;
  options.capacity = kBoardsPerWorker;
  auto worker = fleet::FleetWorker::Create(std::move(options));
  if (!worker.ok()) {
    fprintf(stderr, "%s: create failed: %s\n", name_arg,
            worker.status().ToString().c_str());
    return 1;
  }
  Status ran = worker.value()->Run(transport.value().get());
  if (!ran.ok()) {
    fprintf(stderr, "%s: run failed: %s\n", name_arg, ran.ToString().c_str());
    return 1;
  }
  return 0;
}

struct FleetPoint {
  int workers = 0;
  int boards = 0;
  uint64_t execs = 0;
  uint64_t coverage = 0;
  uint64_t rate = 0;  // execs per virtual hour of the campaign window
  double wall_sec = 0.0;
  double efficiency = 1.0;
};

// One sweep point: an orchestrator serving `workers` self-exec'd subprocess
// workers over TCP localhost, 8 boards each (shard count = total boards).
bool RunFleetPoint(const char* self, int workers, FleetPoint* point) {
  point->workers = workers;
  point->boards = workers * kBoardsPerWorker;

  fleet::Orchestrator::Options options;
  options.board_pool = point->boards;
  auto orchestrator = fleet::Orchestrator::Create(std::move(options));
  if (!orchestrator.ok()) {
    fprintf(stderr, "fleet(%d): orchestrator: %s\n", workers,
            orchestrator.status().ToString().c_str());
    return false;
  }
  fleet::FleetCampaignSpec spec;
  spec.campaign_id = "fleet-scale";
  spec.config = FleetConfig();
  spec.shards = point->boards;
  Status added = orchestrator.value()->AddCampaign(spec);
  if (!added.ok()) {
    fprintf(stderr, "fleet(%d): add campaign: %s\n", workers, added.ToString().c_str());
    return false;
  }

  uint16_t port = 0;
  auto listener = fleet::ListenTcp(0, &port);
  if (!listener.ok()) {
    fprintf(stderr, "fleet(%d): listen: %s\n", workers,
            listener.status().ToString().c_str());
    return false;
  }

  std::string port_str = std::to_string(port);
  std::vector<pid_t> children;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < workers; ++i) {
    std::string name = "bench-w" + std::to_string(i);
    pid_t pid = fork();
    if (pid < 0) {
      fprintf(stderr, "fleet(%d): fork: %s\n", workers, strerror(errno));
      return false;
    }
    if (pid == 0) {
      execl(self, self, "--fleet-worker", port_str.c_str(), name.c_str(),
            static_cast<char*>(nullptr));
      fprintf(stderr, "execl(%s): %s\n", self, strerror(errno));
      _exit(127);
    }
    children.push_back(pid);
  }

  Status served = orchestrator.value()->Serve(listener.value().get());
  bool ok = served.ok();
  if (!ok) {
    fprintf(stderr, "fleet(%d): serve: %s\n", workers, served.ToString().c_str());
  }
  for (pid_t pid : children) {
    int wstatus = 0;
    if (waitpid(pid, &wstatus, 0) != pid || !WIFEXITED(wstatus) ||
        WEXITSTATUS(wstatus) != 0) {
      fprintf(stderr, "fleet(%d): worker pid %d failed (status %d)\n", workers,
              static_cast<int>(pid), wstatus);
      ok = false;
    }
  }
  point->wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (!ok) {
    return false;
  }

  auto results = orchestrator.value()->Results();
  if (results.size() != 1 || results[0].leases_reclaimed != 0) {
    fprintf(stderr, "fleet(%d): unexpected results (campaigns=%zu reclaims=%llu)\n",
            workers, results.size(),
            results.empty()
                ? 0ULL
                : static_cast<unsigned long long>(results[0].leases_reclaimed));
    return false;
  }
  const CampaignResult& campaign = results[0].result;
  point->execs = campaign.execs;
  point->coverage = campaign.final_coverage;
  uint64_t window = campaign.elapsed > 0 ? campaign.elapsed : 1;
  point->rate = campaign.execs * kVirtualHour / window;
  return true;
}

// The process-sharded sweep: 1/2/4/8 workers, 8..64 boards, efficiency against
// the 1-worker point. Writes BENCH_fleet_scaling.json; fails the run when
// efficiency at 8 workers lands under the gate.
int RunFleetScaling(const char* self) {
  printf("== Fleet scaling: FreeRTOS, %llu virtual minutes per board, %d boards/worker ==\n",
         static_cast<unsigned long long>(FleetBudget() / kVirtualMinute),
         kBoardsPerWorker);
  printf("%-8s %8s %12s %16s %14s %12s %11s\n", "workers", "boards", "execs",
         "execs/v-hour", "wall-sec", "coverage", "efficiency");

  std::vector<FleetPoint> points;
  for (int workers : {1, 2, 4, 8}) {
    FleetPoint point;
    if (!RunFleetPoint(self, workers, &point)) {
      return 1;
    }
    if (!points.empty()) {
      point.efficiency = static_cast<double>(point.rate) /
                         (static_cast<double>(workers) *
                          static_cast<double>(points.front().rate));
    }
    printf("%-8d %8d %12llu %16llu %14.2f %12llu %11.4f\n", point.workers,
           point.boards, static_cast<unsigned long long>(point.execs),
           static_cast<unsigned long long>(point.rate), point.wall_sec,
           static_cast<unsigned long long>(point.coverage), point.efficiency);
    points.push_back(point);
  }

  double efficiency_at_8 = points.back().efficiency;
  bool pass = efficiency_at_8 >= kEfficiencyGate;
  FILE* json = fopen("BENCH_fleet_scaling.json", "w");
  if (json != nullptr) {
    fprintf(json, "{\n");
    fprintf(json, "  \"os\": \"freertos\",\n");
    fprintf(json, "  \"boards_per_worker\": %d,\n", kBoardsPerWorker);
    fprintf(json, "  \"budget_virtual_minutes\": %llu,\n",
            static_cast<unsigned long long>(FleetBudget() / kVirtualMinute));
    for (const FleetPoint& point : points) {
      fprintf(json,
              "  \"workers%d\": {\"workers\": %d, \"boards\": %d, \"execs\": %llu, "
              "\"execs_per_vhour\": %llu, \"coverage\": %llu, \"wall_sec\": %.3f, "
              "\"efficiency\": %.4f},\n",
              point.workers, point.workers, point.boards,
              static_cast<unsigned long long>(point.execs),
              static_cast<unsigned long long>(point.rate),
              static_cast<unsigned long long>(point.coverage), point.wall_sec,
              point.efficiency);
    }
    fprintf(json, "  \"efficiency_at_8\": %.4f,\n", efficiency_at_8);
    fprintf(json, "  \"efficiency_gate\": %.2f,\n", kEfficiencyGate);
    fprintf(json, "  \"pass\": %s\n", pass ? "true" : "false");
    fprintf(json, "}\n");
    fclose(json);
    printf("wrote BENCH_fleet_scaling.json\n");
  }
  printf("parallel efficiency at 8 workers (64 boards): %.4f (gate %.2f): %s\n",
         efficiency_at_8, kEfficiencyGate, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (!RegisterAllOses().ok()) {
    fprintf(stderr, "OS registration failed\n");
    return 1;
  }
  SetMinLogSeverity(LogSeverity::kError);

  if (argc >= 3 && std::string(argv[1]) == "--fleet-worker") {
    return RunFleetWorkerChild(argv[2], argc >= 4 ? argv[3] : "bench-w");
  }

  std::string metrics_out;
  bool fleet = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(14);
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (arg == "--fleet") {
      fleet = true;
    }
  }
  if (fleet) {
    return RunFleetScaling(argv[0]);
  }

  FuzzerConfig config;
  config.os_name = "freertos";  // default evaluation board
  config.seed = 1;
  config.budget = ScaledCampaignBudget() / 4;
  config.sample_points = 24;

  printf("== Board-farm scaling: FreeRTOS, %llu virtual minutes per board ==\n",
         static_cast<unsigned long long>(config.budget / kVirtualMinute));
  printf("%-8s %12s %16s %14s %12s\n", "workers", "execs", "execs/v-hour", "wall-sec",
         "coverage");

  uint64_t previous_rate = 0;
  bool monotone = true;
  CampaignResult farm_one;
  for (int jobs : {1, 2, 4}) {
    config.metrics_out =
        metrics_out.empty() ? "" : MetricsPathForJobs(metrics_out, jobs);
    BoardFarm farm(config, jobs);
    auto start = std::chrono::steady_clock::now();
    auto result = farm.Run();
    auto wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - start);
    if (!result.ok()) {
      fprintf(stderr, "farm(%d) failed: %s\n", jobs, result.status().ToString().c_str());
      return 1;
    }
    const CampaignResult& campaign = result.value();
    if (jobs == 1) {
      farm_one = campaign;
    }
    // Campaign throughput: payloads executed per virtual hour of the (parallel)
    // campaign window. This is the metric a physical board farm buys.
    uint64_t window = campaign.elapsed > 0 ? campaign.elapsed : 1;
    uint64_t rate = campaign.execs * kVirtualHour / window;
    printf("%-8d %12llu %16llu %14.2f %12llu\n", jobs,
           static_cast<unsigned long long>(campaign.execs),
           static_cast<unsigned long long>(rate), wall.count(),
           static_cast<unsigned long long>(campaign.final_coverage));
    if (rate < previous_rate) {
      monotone = false;
    }
    previous_rate = rate;
  }
  printf("scaling 1 -> 4 workers: %s\n", monotone ? "monotone" : "NOT MONOTONE");

  config.metrics_out.clear();  // the reference run needs no journal
  EofFuzzer legacy(config);
  auto single = legacy.Run();
  if (!single.ok()) {
    fprintf(stderr, "single-threaded run failed: %s\n",
            single.status().ToString().c_str());
    return 1;
  }
  bool match = SeriesMatch(single.value(), farm_one);
  printf("--jobs 1 vs single-threaded engine: %s\n",
         match ? "bit-identical series" : "MISMATCH");
  return (monotone && match) ? 0 : 1;
}
