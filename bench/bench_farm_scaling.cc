// Board-farm scaling bench: one FreeRTOS campaign fanned out over 1/2/4 simulated
// boards. Since every board burns the same virtual budget concurrently — exactly as
// racked physical boards would — campaign throughput (execs per virtual campaign
// hour) must rise monotonically with the worker count; host-side wall throughput is
// reported alongside to expose the engine's own parallel efficiency.
//
// Also verifies the layering refactor's determinism contract: a --jobs 1 farm
// campaign must bit-match the legacy single-threaded EofFuzzer::Run() series.
//
// With --metrics-out=PATH, each worker-count run streams its telemetry journal to
// PATH with ".jobsN" spliced in before the extension (farm.jsonl -> farm.jobs2.jsonl),
// so CI archives one JSONL per point of the scaling curve.

#include <chrono>
#include <cstdio>
#include <string>

#include "src/common/logging.h"
#include "src/core/board_farm.h"
#include "src/core/campaign.h"
#include "src/os/all_oses.h"

using namespace eof;

namespace {

// farm.jsonl + 2 -> farm.jobs2.jsonl (no extension: appended).
std::string MetricsPathForJobs(const std::string& base, int jobs) {
  std::string suffix = ".jobs" + std::to_string(jobs);
  size_t dot = base.rfind('.');
  if (dot == std::string::npos || dot == 0) {
    return base + suffix;
  }
  return base.substr(0, dot) + suffix + base.substr(dot);
}

bool SeriesMatch(const CampaignResult& a, const CampaignResult& b) {
  if (a.series.size() != b.series.size() || a.final_coverage != b.final_coverage ||
      a.execs != b.execs) {
    return false;
  }
  for (size_t i = 0; i < a.series.size(); ++i) {
    if (a.series[i].time != b.series[i].time ||
        a.series[i].coverage != b.series[i].coverage) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (!RegisterAllOses().ok()) {
    fprintf(stderr, "OS registration failed\n");
    return 1;
  }
  SetMinLogSeverity(LogSeverity::kError);

  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(14);
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    }
  }

  FuzzerConfig config;
  config.os_name = "freertos";  // default evaluation board
  config.seed = 1;
  config.budget = ScaledCampaignBudget() / 4;
  config.sample_points = 24;

  printf("== Board-farm scaling: FreeRTOS, %llu virtual minutes per board ==\n",
         static_cast<unsigned long long>(config.budget / kVirtualMinute));
  printf("%-8s %12s %16s %14s %12s\n", "workers", "execs", "execs/v-hour", "wall-sec",
         "coverage");

  uint64_t previous_rate = 0;
  bool monotone = true;
  CampaignResult farm_one;
  for (int jobs : {1, 2, 4}) {
    config.metrics_out =
        metrics_out.empty() ? "" : MetricsPathForJobs(metrics_out, jobs);
    BoardFarm farm(config, jobs);
    auto start = std::chrono::steady_clock::now();
    auto result = farm.Run();
    auto wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - start);
    if (!result.ok()) {
      fprintf(stderr, "farm(%d) failed: %s\n", jobs, result.status().ToString().c_str());
      return 1;
    }
    const CampaignResult& campaign = result.value();
    if (jobs == 1) {
      farm_one = campaign;
    }
    // Campaign throughput: payloads executed per virtual hour of the (parallel)
    // campaign window. This is the metric a physical board farm buys.
    uint64_t window = campaign.elapsed > 0 ? campaign.elapsed : 1;
    uint64_t rate = campaign.execs * kVirtualHour / window;
    printf("%-8d %12llu %16llu %14.2f %12llu\n", jobs,
           static_cast<unsigned long long>(campaign.execs),
           static_cast<unsigned long long>(rate), wall.count(),
           static_cast<unsigned long long>(campaign.final_coverage));
    if (rate < previous_rate) {
      monotone = false;
    }
    previous_rate = rate;
  }
  printf("scaling 1 -> 4 workers: %s\n", monotone ? "monotone" : "NOT MONOTONE");

  config.metrics_out.clear();  // the reference run needs no journal
  EofFuzzer legacy(config);
  auto single = legacy.Run();
  if (!single.ok()) {
    fprintf(stderr, "single-threaded run failed: %s\n",
            single.status().ToString().c_str());
    return 1;
  }
  bool match = SeriesMatch(single.value(), farm_one);
  printf("--jobs 1 vs single-threaded engine: %s\n",
         match ? "bit-identical series" : "MISMATCH");
  return (monotone && match) ? 0 : 1;
}
