// Regenerates Table 2: previously-unknown bugs found by EOF on the four target OSs, with
// scope / type / operation / detector attribution, plus the §5.4.1 comparison counts
// (EOF-nf and Tardis bug totals).
//
// Campaign length scales with EOF_BENCH_SCALE (default: 1 virtual hour per campaign;
// EOF_BENCH_SCALE=1 runs the paper's full 24 hours). Short runs find the shallow subset;
// the deep staircase bugs (#7, #10, #11, #14, #16, #17) need longer budgets.

#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "src/baselines/baselines.h"
#include "src/core/bug_catalog.h"
#include "src/core/campaign.h"
#include "src/os/all_oses.h"

using namespace eof;

int main() {
  if (!RegisterAllOses().ok()) {
    fprintf(stderr, "OS registration failed\n");
    return 1;
  }
  VirtualDuration budget = ScaledCampaignBudget();
  int reps = ScaledRepetitions();
  printf("=== Table 2: bugs detected (campaign: %llu virtual min x %d reps per OS) ===\n\n",
         static_cast<unsigned long long>(budget / kVirtualMinute), reps);

  const char* oses[] = {"zephyr", "rtthread", "freertos", "nuttx"};
  std::set<int> eof_bugs;
  std::set<int> eofnf_bugs;
  std::set<int> tardis_bugs;
  std::map<int, std::string> detector_of;

  for (const char* os : oses) {
    auto eof_runs = RunRepeated(EofConfig(os, 101, budget), reps);
    if (!eof_runs.ok()) {
      fprintf(stderr, "%s EOF: %s\n", os, eof_runs.status().ToString().c_str());
      return 1;
    }
    for (const CampaignResult& run : eof_runs.value().runs) {
      for (const BugReport& bug : run.bugs) {
        if (bug.catalog_id != 0) {
          eof_bugs.insert(bug.catalog_id);
          if (detector_of.count(bug.catalog_id) == 0) {
            detector_of[bug.catalog_id] = bug.detector;
          }
        }
      }
    }
    auto nf_runs = RunRepeated(EofNfConfig(os, 101, budget), reps);
    if (nf_runs.ok()) {
      for (int id : nf_runs.value().UnionBugs()) {
        eofnf_bugs.insert(id);
      }
    }
    // Tardis has no bug monitors: a bug "found" by Tardis is a crash it *triggered*; we
    // count catalog bugs its campaigns tripped (visible in our ground truth as restores
    // whose UART carried a signature — approximated by running with monitors for
    // accounting but Tardis's own report would say "timeout").
    FuzzerConfig tardis_accounting = TardisConfig(os, 101, budget);
    tardis_accounting.log_monitor = true;
    tardis_accounting.exception_monitor = true;
    auto tardis_runs = RunRepeated(tardis_accounting, reps);
    if (tardis_runs.ok()) {
      for (int id : tardis_runs.value().UnionBugs()) {
        tardis_bugs.insert(id);
      }
    }
  }

  printf("%-3s %-10s %-10s %-17s %-22s %-9s %-10s\n", "#", "Target", "Scope", "Bug Type",
         "Operation", "Found", "Detector");
  int found_count = 0;
  int confirmed = 0;
  for (const BugInfo& bug : BugCatalog()) {
    bool found = eof_bugs.count(bug.id) != 0;
    if (found) {
      ++found_count;
      if (bug.confirmed) {
        ++confirmed;
      }
    }
    printf("%-3d %-10s %-10s %-17s %-22s %-9s %-10s\n", bug.id, bug.os.c_str(),
           bug.scope.c_str(), bug.bug_type.c_str(), bug.operation.c_str(),
           found ? "yes" : "-",
           found ? detector_of[bug.id].c_str() : "-");
  }
  printf("\nEOF: %d of 19 catalog bugs (%d upstream-confirmed among them)\n", found_count,
         confirmed);
  printf("EOF-nf: %zu bugs (paper: 11)   [", eofnf_bugs.size());
  for (int id : eofnf_bugs) {
    printf("#%d ", id);
  }
  printf("]\nTardis triggered: %zu bugs (paper: 6; Tardis itself reports them only as "
         "timeouts) [",
         tardis_bugs.size());
  for (int id : tardis_bugs) {
    printf("#%d ", id);
  }
  printf("]\n\nNote: paper detector split — log monitor: #5 #8 #17; exception monitor: "
         "the rest.\n");
  return 0;
}
