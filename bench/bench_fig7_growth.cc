// Regenerates Figure 7: 24-hour coverage-growth curves (mean with min/max band over the
// repetitions) for EOF, EOF-nf, and Tardis on each embedded OS, printed as aligned series
// (one row per sample point) suitable for plotting.

#include <cstdio>

#include "src/baselines/baselines.h"
#include "src/core/campaign.h"
#include "src/os/all_oses.h"

using namespace eof;

int main() {
  if (!RegisterAllOses().ok()) {
    fprintf(stderr, "OS registration failed\n");
    return 1;
  }
  VirtualDuration budget = ScaledCampaignBudget();
  int reps = ScaledRepetitions();
  uint32_t points = 24;
  printf("=== Figure 7: coverage growth curves (%llu virtual min, %d reps, %u samples) "
         "===\n",
         static_cast<unsigned long long>(budget / kVirtualMinute), reps, points);

  for (const char* os : {"freertos", "rtthread", "nuttx", "zephyr", "pokos"}) {
    printf("\n--- %s ---\n", os);
    printf("%-8s | %-26s | %-26s | %-26s\n", "t(min)", "EOF mean[min,max]",
           "EOF-nf mean[min,max]", "Tardis mean[min,max]");

    FuzzerConfig configs[3] = {EofConfig(os, 301, budget), EofNfConfig(os, 301, budget),
                               TardisConfig(os, 301, budget)};
    SeriesBand bands[3];
    bool have[3] = {false, false, false};
    for (int tool = 0; tool < 3; ++tool) {
      if (tool == 2 && std::string(os) == "pokos") {
        continue;  // Tardis does not target PoKOS (Table 3 uses GUSTAVE there)
      }
      configs[tool].sample_points = points;
      auto runs = RunRepeated(configs[tool], reps);
      if (runs.ok()) {
        bands[tool] = runs.value().Band();
        have[tool] = true;
      }
    }
    size_t rows = 0;
    for (int tool = 0; tool < 3; ++tool) {
      if (have[tool]) {
        rows = rows == 0 ? bands[tool].time.size()
                         : std::min(rows, bands[tool].time.size());
      }
    }
    for (size_t i = 0; i < rows; ++i) {
      printf("%-8llu |", static_cast<unsigned long long>(bands[0].time[i] / kVirtualMinute));
      for (int tool = 0; tool < 3; ++tool) {
        if (have[tool]) {
          printf(" %8.1f [%6.0f,%6.0f]  |", bands[tool].mean[i], bands[tool].min[i],
                 bands[tool].max[i]);
        } else {
          printf(" %-26s|", "  -");
        }
      }
      printf("\n");
    }
  }
  printf("\nExpected shape (paper): EOF-nf and Tardis saturate; EOF keeps growing "
         "through the second half.\n");
  return 0;
}
