// Debug-link batching bench (§5.5 link overhead): two otherwise identical FreeRTOS
// campaigns, one on the vectored/batched debug link (mailbox publish, stop+status
// coalescing, one-round-trip coverage drain, delta reflash) and one on the legacy
// one-command-per-operation link. Reports debug-port transactions and virtual time
// per execution for both, plus a deployment-level delta-reflash probe, and emits the
// machine-readable BENCH_port_batching.json for CI.
//
// The batched link must cut per-execution link transactions by at least 2x, and a
// no-corruption restore must checksum-skip every pristine partition.

#include <chrono>
#include <cstdio>

#include "src/common/logging.h"
#include "src/core/campaign.h"
#include "src/core/deployment.h"
#include "src/core/fuzzer.h"
#include "src/os/all_oses.h"

using namespace eof;

namespace {

struct LinkRun {
  uint64_t execs = 0;
  uint64_t transactions = 0;
  uint64_t batches = 0;
  uint64_t coverage = 0;
  VirtualTime elapsed = 0;
  double wall_sec = 0;

  double TransPerExec() const { return execs == 0 ? 0 : double(transactions) / execs; }
  double VtimePerExecUs() const { return execs == 0 ? 0 : double(elapsed) / execs; }
};

bool RunCampaign(bool batched, VirtualDuration budget, LinkRun* out) {
  FuzzerConfig config;
  config.os_name = "freertos";
  config.seed = 1;
  config.budget = budget;
  config.sample_points = 24;
  config.batched_link = batched;

  EofFuzzer fuzzer(config);
  auto start = std::chrono::steady_clock::now();
  auto result = fuzzer.Run();
  out->wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (!result.ok()) {
    fprintf(stderr, "campaign(%s) failed: %s\n", batched ? "batched" : "legacy",
            result.status().ToString().c_str());
    return false;
  }
  const CampaignResult& campaign = result.value();
  out->execs = campaign.execs;
  out->transactions = campaign.link.transactions;
  out->batches = campaign.link.batches;
  out->coverage = campaign.final_coverage;
  out->elapsed = campaign.elapsed;
  return true;
}

}  // namespace

int main() {
  if (!RegisterAllOses().ok()) {
    fprintf(stderr, "OS registration failed\n");
    return 1;
  }
  SetMinLogSeverity(LogSeverity::kError);

  // ~5-6 virtual minutes at the default EOF_BENCH_SCALE: long enough for thousands
  // of executions, short enough for a CI smoke run.
  VirtualDuration budget = ScaledCampaignBudget() / 32;
  printf("== Debug-link batching: FreeRTOS, %llu virtual seconds per campaign ==\n",
         static_cast<unsigned long long>(budget / kVirtualSecond));

  LinkRun batched;
  LinkRun legacy;
  if (!RunCampaign(true, budget, &batched) || !RunCampaign(false, budget, &legacy)) {
    return 1;
  }

  printf("%-10s %10s %14s %12s %16s %10s\n", "link", "execs", "transactions",
         "trans/exec", "v-usec/exec", "coverage");
  for (const auto* run : {&batched, &legacy}) {
    printf("%-10s %10llu %14llu %12.2f %16.1f %10llu\n",
           run == &batched ? "batched" : "legacy",
           static_cast<unsigned long long>(run->execs),
           static_cast<unsigned long long>(run->transactions), run->TransPerExec(),
           run->VtimePerExecUs(), static_cast<unsigned long long>(run->coverage));
  }

  double ratio = batched.TransPerExec() > 0
                     ? legacy.TransPerExec() / batched.TransPerExec()
                     : 0;
  double throughput_gain = legacy.execs > 0 ? double(batched.execs) / legacy.execs : 0;
  printf("transactions/exec: legacy/batched = %.2fx, executions in equal budget: %.2fx\n",
         ratio, throughput_gain);

  // Delta-reflash probe: restore an uncorrupted deployment. Every payload partition
  // must be proven pristine by on-target checksum and skipped.
  DeployOptions deploy;
  deploy.os_name = "freertos";
  auto deployment_or = Deployment::Create(deploy);
  if (!deployment_or.ok()) {
    fprintf(stderr, "deployment failed: %s\n",
            deployment_or.status().ToString().c_str());
    return 1;
  }
  Deployment& deployment = *deployment_or.value();
  // Probe the restore through registry snapshots: Diff(before, after) isolates
  // exactly the link traffic of this one restore.
  telemetry::MetricsSnapshot before = deployment.port().registry().Snapshot();
  if (!deployment.ReflashAndReboot().ok()) {
    fprintf(stderr, "restore failed\n");
    return 1;
  }
  telemetry::MetricsSnapshot restore_delta =
      deployment.port().registry().Snapshot().Diff(before);
  DebugPortStats window = DebugPortStatsFromSnapshot(restore_delta);
  uint64_t skipped = window.flash_skipped_bytes;
  uint64_t programmed = window.flash_bytes;
  printf("no-corruption restore: %llu flash bytes skipped, %llu reprogrammed\n",
         static_cast<unsigned long long>(skipped),
         static_cast<unsigned long long>(programmed));

  FILE* json = fopen("BENCH_port_batching.json", "w");
  if (json != nullptr) {
    fprintf(json, "{\n");
    for (const auto* run : {&batched, &legacy}) {
      fprintf(json,
              "  \"%s\": {\"execs\": %llu, \"transactions\": %llu, \"batches\": %llu,"
              " \"trans_per_exec\": %.4f, \"vtime_per_exec_us\": %.4f,"
              " \"coverage\": %llu, \"wall_sec\": %.3f},\n",
              run == &batched ? "batched" : "legacy",
              static_cast<unsigned long long>(run->execs),
              static_cast<unsigned long long>(run->transactions),
              static_cast<unsigned long long>(run->batches), run->TransPerExec(),
              run->VtimePerExecUs(), static_cast<unsigned long long>(run->coverage),
              run->wall_sec);
    }
    fprintf(json,
            "  \"transactions_per_exec_ratio\": %.4f,\n"
            "  \"throughput_gain\": %.4f,\n"
            "  \"delta_reflash\": {\"flash_skipped_bytes\": %llu,"
            " \"flash_bytes_programmed\": %llu}\n}\n",
            ratio, throughput_gain, static_cast<unsigned long long>(skipped),
            static_cast<unsigned long long>(programmed));
    fclose(json);
    printf("wrote BENCH_port_batching.json\n");
  }

  bool ok = true;
  if (ratio < 2.0) {
    fprintf(stderr, "FAIL: batched link saves only %.2fx transactions/exec (need 2x)\n",
            ratio);
    ok = false;
  }
  if (skipped == 0) {
    fprintf(stderr, "FAIL: delta reflash skipped nothing on a pristine restore\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
