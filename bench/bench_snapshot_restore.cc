// Snapshot-restore bench (the reboot tax): two otherwise identical crash-heavy
// RT-Thread campaigns, one recovering boards with the full Algorithm-1
// reflash+reboot, one riding the warm snapshot fast path (RestoreMode::kSnapshot).
// Both campaigns run the per-exec state-isolation discipline every real snapshot
// fuzzer uses — restore pristine kernel state after EVERY input
// (periodic_reset_execs=1) — so each execution pays one restore, and the corpus is
// seeded with bug #5's null-object assertion (a flash-clean crash on the very
// first call) so crash recoveries stay heavily represented too. Under the same
// virtual budget, executions-per-virtual-hour is the figure of merit: in reflash
// mode each restore costs a reboot (or reflash+reboot after a crash), in snapshot
// mode a write-count-gated shadow audit plus a warm core restore and one batched
// RAM write. The board is hifive1-revb: its tiny SRAM keeps that RAM rewrite two
// orders of magnitude under kRebootCost, which is the whole point of the fast
// path. Instrumentation is off in both modes so the restore tax is measured
// against bare execution cost (instrumentation overhead has its own bench,
// bench_sec55_overhead).
//
// The snapshot campaign must clear at least 5x the reflash campaign's throughput,
// and its bug table must contain only cold-boot-confirmed entries (rejected
// sightings are reported but may never leak into the table). Emits the
// machine-readable BENCH_snapshot_restore.json for CI.

#include <chrono>
#include <cstdio>

#include "src/common/logging.h"
#include "src/core/campaign.h"
#include "src/core/fuzzer.h"
#include "src/os/all_oses.h"

using namespace eof;

namespace {

// Bug #5: rt_object_get_type(RT_NULL) asserts on the very first call — the
// cheapest possible crash (no yield delays accrue before the core parks).
constexpr char kNullObjectCrasher[] = "r0 = rt_object_get_type(0)";

struct ModeRun {
  uint64_t execs = 0;
  uint64_t crashes = 0;
  uint64_t restores = 0;
  uint64_t snapshot_restores = 0;
  uint64_t snapshot_bytes = 0;
  uint64_t bugs = 0;
  uint64_t bugs_rejected = 0;
  uint64_t unconfirmed_in_table = 0;
  uint64_t coverage = 0;
  VirtualTime elapsed = 0;
  double wall_sec = 0;

  double ExecsPerVirtualHour() const {
    return elapsed == 0 ? 0 : double(execs) * kVirtualHour / double(elapsed);
  }
};

bool RunCampaign(RestoreMode mode, VirtualDuration budget, ModeRun* out) {
  FuzzerConfig config;
  config.os_name = "rtthread";
  config.board_name = "hifive1-revb";
  config.seed = 1;
  config.budget = budget;
  config.sample_points = 24;
  config.restore_mode = mode;
  // Per-exec state isolation: every completed execution sheds kernel state before
  // the next input, the standard snapshot-fuzzer discipline. In reflash mode that
  // is a reboot per exec — the tax under test.
  config.periodic_reset_execs = 1;
  // Crash-heavy by construction: single-call programs confined to the object
  // registry (cheap APIs, no delay-burning calls), where a null resource argument
  // crashes on the very first call. Instrumentation off keeps per-exec kernel time
  // small against the restore cost under test — the quantity this bench isolates.
  config.gen.max_calls = 1;
  config.gen.allowed_subsystems = {"object"};
  config.instrumentation.enabled = false;
  config.seed_programs = {kNullObjectCrasher};

  EofFuzzer fuzzer(config);
  auto start = std::chrono::steady_clock::now();
  auto result = fuzzer.Run();
  out->wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (!result.ok()) {
    fprintf(stderr, "campaign(%s) failed: %s\n",
            mode == RestoreMode::kSnapshot ? "snapshot" : "reflash",
            result.status().ToString().c_str());
    return false;
  }
  const CampaignResult& campaign = result.value();
  out->execs = campaign.execs;
  out->crashes = campaign.crashes;
  out->restores = campaign.restores;
  out->snapshot_restores = campaign.snapshot_restores;
  out->snapshot_bytes = campaign.snapshot_bytes;
  out->bugs = campaign.bugs.size();
  out->bugs_rejected = campaign.bugs_rejected;
  for (const BugReport& bug : campaign.bugs) {
    // In snapshot mode every table entry must have survived the cold-boot oracle.
    if (mode == RestoreMode::kSnapshot && bug.snapshot_validation != "confirmed") {
      ++out->unconfirmed_in_table;
    }
  }
  out->coverage = campaign.final_coverage;
  out->elapsed = campaign.elapsed;
  return true;
}

}  // namespace

int main() {
  if (!RegisterAllOses().ok()) {
    fprintf(stderr, "OS registration failed\n");
    return 1;
  }
  SetMinLogSeverity(LogSeverity::kError);

  VirtualDuration budget = ScaledCampaignBudget() / 32;
  printf("== Snapshot restore vs reflash: RT-Thread crash-heavy, %llu virtual seconds"
         " per campaign ==\n",
         static_cast<unsigned long long>(budget / kVirtualSecond));

  ModeRun reflash;
  ModeRun snapshot;
  if (!RunCampaign(RestoreMode::kReflash, budget, &reflash) ||
      !RunCampaign(RestoreMode::kSnapshot, budget, &snapshot)) {
    return 1;
  }

  printf("%-10s %10s %10s %10s %12s %14s %10s\n", "restore", "execs", "crashes",
         "restores", "warm", "execs/v-hour", "coverage");
  for (const auto* run : {&reflash, &snapshot}) {
    printf("%-10s %10llu %10llu %10llu %12llu %14.0f %10llu\n",
           run == &reflash ? "reflash" : "snapshot",
           static_cast<unsigned long long>(run->execs),
           static_cast<unsigned long long>(run->crashes),
           static_cast<unsigned long long>(run->restores),
           static_cast<unsigned long long>(run->snapshot_restores),
           run->ExecsPerVirtualHour(), static_cast<unsigned long long>(run->coverage));
  }

  double throughput_ratio = reflash.ExecsPerVirtualHour() > 0
                                ? snapshot.ExecsPerVirtualHour() /
                                      reflash.ExecsPerVirtualHour()
                                : 0;
  printf("throughput: snapshot/reflash = %.2fx execs per virtual hour\n",
         throughput_ratio);
  printf("snapshot campaign: %llu warm restores pushed %llu MB of RAM, "
         "%llu bugs confirmed, %llu sightings rejected by the cold-boot oracle\n",
         static_cast<unsigned long long>(snapshot.snapshot_restores),
         static_cast<unsigned long long>(snapshot.snapshot_bytes / (1024 * 1024)),
         static_cast<unsigned long long>(snapshot.bugs),
         static_cast<unsigned long long>(snapshot.bugs_rejected));

  FILE* json = fopen("BENCH_snapshot_restore.json", "w");
  if (json != nullptr) {
    fprintf(json, "{\n");
    for (const auto* run : {&reflash, &snapshot}) {
      fprintf(json,
              "  \"%s\": {\"execs\": %llu, \"crashes\": %llu, \"restores\": %llu,"
              " \"snapshot_restores\": %llu, \"snapshot_bytes\": %llu,"
              " \"bugs\": %llu, \"bugs_rejected\": %llu,"
              " \"execs_per_virtual_hour\": %.2f, \"coverage\": %llu,"
              " \"elapsed_vus\": %llu, \"wall_sec\": %.3f},\n",
              run == &reflash ? "reflash" : "snapshot",
              static_cast<unsigned long long>(run->execs),
              static_cast<unsigned long long>(run->crashes),
              static_cast<unsigned long long>(run->restores),
              static_cast<unsigned long long>(run->snapshot_restores),
              static_cast<unsigned long long>(run->snapshot_bytes),
              static_cast<unsigned long long>(run->bugs),
              static_cast<unsigned long long>(run->bugs_rejected),
              run->ExecsPerVirtualHour(),
              static_cast<unsigned long long>(run->coverage),
              static_cast<unsigned long long>(run->elapsed), run->wall_sec);
    }
    fprintf(json, "  \"throughput_ratio\": %.4f\n}\n", throughput_ratio);
    fclose(json);
    printf("wrote BENCH_snapshot_restore.json\n");
  }

  bool ok = true;
  if (throughput_ratio < 5.0) {
    fprintf(stderr,
            "FAIL: snapshot restore yields only %.2fx execs/virtual-hour (need 5x)\n",
            throughput_ratio);
    ok = false;
  }
  if (snapshot.snapshot_restores == 0) {
    fprintf(stderr, "FAIL: the snapshot campaign never used the warm path\n");
    ok = false;
  }
  if (snapshot.unconfirmed_in_table != 0) {
    fprintf(stderr,
            "FAIL: %llu bug-table entries lack cold-boot confirmation\n",
            static_cast<unsigned long long>(snapshot.unconfirmed_in_table));
    ok = false;
  }
  if (snapshot.bugs == 0) {
    fprintf(stderr, "FAIL: crash-heavy snapshot campaign confirmed no bugs\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
