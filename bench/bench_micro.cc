// Microbenchmarks (google-benchmark) of the host-side hot paths: wire codec, program
// generation/mutation, coverage accounting, debug-port memory traffic, and full target
// boots. These bound the host overhead per executed payload.

#include <benchmark/benchmark.h>

#include "src/common/coverage_map.h"
#include "src/core/deployment.h"
#include "src/core/executor.h"
#include "src/fuzz/corpus.h"
#include "src/fuzz/generator.h"
#include "src/agent/wire.h"
#include "src/kernel/os.h"
#include "src/os/all_oses.h"
#include "src/spec/spec_miner.h"

namespace eof {
namespace {

const spec::CompiledSpecs& Specs() {
  static const spec::CompiledSpecs* specs = [] {
    (void)RegisterAllOses();
    auto os = OsRegistry::Instance().Find("rtthread").value().factory();
    auto mined = spec::MineValidatedSpecs(os->registry());
    return new spec::CompiledSpecs(std::move(mined.value().specs));
  }();
  return *specs;
}

void BM_GenerateProgram(benchmark::State& state) {
  fuzz::Generator generator(Specs(), fuzz::GeneratorOptions{}, 1);
  for (auto _ : state) {
    fuzz::Program program = generator.Generate();
    benchmark::DoNotOptimize(program.calls.size());
  }
}
BENCHMARK(BM_GenerateProgram);

void BM_MutateProgram(benchmark::State& state) {
  fuzz::Generator generator(Specs(), fuzz::GeneratorOptions{}, 1);
  fuzz::Program seed = generator.Generate();
  for (auto _ : state) {
    fuzz::Program program = generator.Mutate(seed);
    benchmark::DoNotOptimize(program.calls.size());
  }
}
BENCHMARK(BM_MutateProgram);

void BM_WireEncodeDecode(benchmark::State& state) {
  fuzz::Generator generator(Specs(), fuzz::GeneratorOptions{}, 1);
  fuzz::Program program = generator.Generate();
  WireProgram wire = program.ToWire(Specs());
  for (auto _ : state) {
    std::vector<uint8_t> encoded = EncodeProgram(wire);
    WireProgram decoded;
    AgentError error = DecodeProgram(encoded.data(), encoded.size(), &decoded);
    benchmark::DoNotOptimize(error);
  }
}
BENCHMARK(BM_WireEncodeDecode);

void BM_CoverageMerge(benchmark::State& state) {
  Rng rng(7);
  std::vector<uint64_t> batch(256);
  for (auto& id : batch) {
    id = rng.Below(1 << 14);
  }
  CoverageMap map;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.AddBatch(batch));
  }
}
BENCHMARK(BM_CoverageMerge);

void BM_DebugPortMemRead(benchmark::State& state) {
  (void)RegisterAllOses();
  DeployOptions options;
  options.os_name = "freertos";
  static auto deployment = Deployment::Create(options).value().release();
  uint64_t base = deployment->board_spec().ram_base;
  for (auto _ : state) {
    auto data = deployment->port().ReadMem(base, 4096);
    benchmark::DoNotOptimize(data.ok());
  }
}
BENCHMARK(BM_DebugPortMemRead);

void BM_ExecLoop(benchmark::State& state) {
  // The full per-payload hot path: mailbox publish, breakpoint-synchronised
  // execution, coverage drain. This is the loop the telemetry fast path must not
  // slow down (<5% is the budget).
  (void)RegisterAllOses();
  static Rng* rng = new Rng(11);
  static TargetExecutor* executor = [] {
    ExecutorOptions options;
    options.os_name = "freertos";
    options.exception_symbol = "panic_handler";
    return TargetExecutor::Create(options, rng).value().release();
  }();
  static const spec::CompiledSpecs* specs = [] {
    auto os = OsRegistry::Instance().Find("freertos").value().factory();
    return new spec::CompiledSpecs(
        std::move(spec::MineValidatedSpecs(os->registry()).value().specs));
  }();
  fuzz::Generator generator(*specs, fuzz::GeneratorOptions{}, 3);
  fuzz::Program program = generator.Generate();
  std::vector<uint8_t> encoded = EncodeProgram(program.ToWire(*specs));
  for (auto _ : state) {
    auto outcome = executor->ExecuteOne(encoded);
    benchmark::DoNotOptimize(outcome.ok());
  }
}
BENCHMARK(BM_ExecLoop);

void BM_FullDeployBoot(benchmark::State& state) {
  (void)RegisterAllOses();
  for (auto _ : state) {
    DeployOptions options;
    options.os_name = "zephyr";
    auto deployment = Deployment::Create(options);
    benchmark::DoNotOptimize(deployment.ok());
  }
}
BENCHMARK(BM_FullDeployBoot);

}  // namespace
}  // namespace eof

BENCHMARK_MAIN();
