// Regenerates §5.5: instrumentation overhead.
//   §5.5.1 memory overhead — image size with vs without SanCov instrumentation.
//   §5.5.2 execution overhead — payloads executed in 10 virtual minutes with vs without
//   instrumentation (same generation seed, monitors on, feedback off so scheduling noise
//   does not contaminate the measurement).

#include <cstdio>

#include "src/core/campaign.h"
#include "src/core/fuzzer.h"
#include "src/core/image_builder.h"
#include "src/os/all_oses.h"

using namespace eof;

int main() {
  if (!RegisterAllOses().ok()) {
    fprintf(stderr, "OS registration failed\n");
    return 1;
  }
  const char* oses[] = {"nuttx", "rtthread", "zephyr", "freertos"};

  printf("=== Sec 5.5.1: memory overhead (image size) ===\n\n");
  printf("%-10s %-12s %-14s %-10s\n", "Target", "Base (MB)", "Instr. (MB)", "Overhead");
  double mem_sum = 0;
  for (const char* os : oses) {
    InstrumentationOptions off;
    off.enabled = false;
    uint64_t base = ComputeImageSize(os, off).value();
    uint64_t instrumented = ComputeImageSize(os, InstrumentationOptions{}).value();
    double overhead =
        (static_cast<double>(instrumented) - static_cast<double>(base)) / base * 100.0;
    mem_sum += overhead;
    printf("%-10s %-12.3f %-14.3f +%.2f%%\n", os, base / 1048576.0,
           instrumented / 1048576.0, overhead);
  }
  printf("average: +%.2f%%   (paper: NuttX +4.76%%, RT-Thread +7.11%%, Zephyr +9.58%%, "
         "FreeRTOS +4.32%%; avg +6.44%%)\n",
         mem_sum / 4);

  printf("\n=== Sec 5.5.2: execution overhead (payloads / 10 virtual minutes) ===\n\n");
  printf("%-10s %-14s %-14s %-10s\n", "Target", "Uninstr.", "Instr.", "Overhead");
  double exec_sum = 0;
  for (const char* os : oses) {
    uint64_t counts[2] = {0, 0};
    for (int pass = 0; pass < 2; ++pass) {
      FuzzerConfig config;
      config.os_name = os;
      config.seed = 9000;
      config.budget = 10 * kVirtualMinute;
      config.coverage_feedback = false;  // identical generation either way
      config.instrumentation.enabled = pass == 1;
      EofFuzzer fuzzer(config);
      auto result = fuzzer.Run();
      if (!result.ok()) {
        fprintf(stderr, "%s: %s\n", os, result.status().ToString().c_str());
        return 1;
      }
      counts[pass] = result.value().execs;
    }
    double overhead = counts[1] > 0
                          ? (static_cast<double>(counts[0]) - counts[1]) / counts[0] * 100.0
                          : 0;
    exec_sum += overhead;
    printf("%-10s %-14llu %-14llu %.2f%%\n", os, (unsigned long long)counts[0],
           (unsigned long long)counts[1], overhead);
  }
  printf("average: %.2f%%   (paper: NuttX 30.82%%, RT-Thread 15.99%%, Zephyr 24.32%%, "
         "FreeRTOS 24.44%%; avg 23.39%%)\n",
         exec_sum / 4);
  return 0;
}
