// Regenerates Table 4 and Figure 8: application-level coverage of EOF vs GDBFuzz vs SHIFT
// on the HTTP server and JSON component running on the ESP32-class board, with
// instrumentation (and EOF's generation) strictly confined to the module under test.

#include <cstdio>
#include <string>
#include <vector>

#include "src/baselines/byte_fuzzer.h"
#include "src/core/campaign.h"
#include "src/os/all_oses.h"

using namespace eof;

namespace {

struct ToolSeries {
  double mean_final = 0;
  SeriesBand band;
  bool ok = false;
};

ToolSeries RunEofApp(const std::string& entry, VirtualDuration budget, int reps,
                     uint32_t points) {
  FuzzerConfig base;
  base.os_name = "freertos";
  base.board_name = "esp32-devkitc";
  base.budget = budget;
  base.sample_points = points;
  base.seed = 401;
  base.gen.allowed_subsystems = {entry};
  base.instrumentation.module_filter = {"apps/" + entry};
  // The same seed material the byte-buffer tools ship, as initial-corpus programs.
  if (entry == "json") {
    base.seed_programs = {
        "r0 = json_parse(`7b226b223a317d`)",                  // {"k":1}
        "r0 = json_parse(`5b312c2d322e35652b332c22615c6e222c747275652c66616c73652c6e"
        "756c6c5d`)",                                         // [1,-2.5e+3,"a\n",...]
        "r0 = json_parse(`7b2261223a7b2262223a5b7b7d2c225c7530303431225d7d7d`)",
    };
  } else {
    base.seed_programs = {
        "r0 = http_server_start(0x50)\n"
        "r1 = http_handle_raw(`474554202f20485454502f312e310d0a686f73743a20610d0a0d0a`)",
        "r0 = http_server_start(0x50)\n"
        "r1 = http_handle_raw(`504f5354202f6170692f6c656420485454502f312e310d0a636f6e74"
        "656e742d6c656e6774683a20320d0a0d0a6f6e`)",
    };
  }
  auto runs = RunRepeated(base, reps);
  ToolSeries series;
  if (runs.ok()) {
    series.mean_final = runs.value().MeanFinalCoverage();
    series.band = runs.value().Band();
    series.ok = true;
  }
  return series;
}

ToolSeries RunByteTool(ByteFuzzerMode mode, const std::string& entry,
                       VirtualDuration budget, int reps, uint32_t points) {
  ToolSeries series;
  std::vector<CampaignResult> runs;
  for (int rep = 0; rep < reps; ++rep) {
    ByteFuzzerConfig config;
    config.mode = mode;
    config.os_name = "freertos";
    config.board_name = "esp32-devkitc";
    config.entry = entry;
    config.seed = 401 + static_cast<uint64_t>(rep) * 7919;
    config.budget = budget;
    config.sample_points = points;
    ByteFuzzer fuzzer(config);
    auto run = fuzzer.Run();
    if (!run.ok()) {
      fprintf(stderr, "%s/%s: %s\n", ByteFuzzerModeName(mode), entry.c_str(),
              run.status().ToString().c_str());
      return series;
    }
    runs.push_back(std::move(run.value()));
  }
  RepeatedResult repeated;
  repeated.runs = std::move(runs);
  series.mean_final = repeated.MeanFinalCoverage();
  series.band = repeated.Band();
  series.ok = true;
  return series;
}

double Improvement(double eof, double other) {
  return other > 0 ? (eof - other) / other * 100.0 : 0;
}

}  // namespace

int main() {
  if (!RegisterAllOses().ok()) {
    fprintf(stderr, "OS registration failed\n");
    return 1;
  }
  VirtualDuration budget = ScaledCampaignBudget();
  int reps = ScaledRepetitions();
  uint32_t points = 24;
  printf("=== Table 4: app-level coverage on ESP32, EOF vs GDBFuzz vs SHIFT "
         "(%llu virtual min x %d reps) ===\n\n",
         static_cast<unsigned long long>(budget / kVirtualMinute), reps);

  ToolSeries results[2][3];  // [http|json][eof|gdbfuzz|shift]
  const char* entries[2] = {"http", "json"};
  for (int target = 0; target < 2; ++target) {
    results[target][0] = RunEofApp(entries[target], budget, reps, points);
    results[target][1] = RunByteTool(ByteFuzzerMode::kGdbFuzz, entries[target], budget,
                                     reps, points);
    results[target][2] = RunByteTool(ByteFuzzerMode::kShift, entries[target], budget,
                                     reps, points);
  }

  printf("%-10s %-14s %-14s %-12s\n", "Fuzzer", "HTTP Server", "JSON", "Average");
  const char* tools[3] = {"EOF", "GDBFuzz", "SHIFT"};
  double eof_avg =
      (results[0][0].mean_final + results[1][0].mean_final) / 2;
  for (int tool = 0; tool < 3; ++tool) {
    double http = results[0][tool].mean_final;
    double json = results[1][tool].mean_final;
    double average = (http + json) / 2;
    if (tool == 0) {
      printf("%-10s %-14.1f %-14.1f %-12.1f\n", tools[tool], http, json, average);
    } else {
      printf("%-10s %.1f (+%.2f%%) %.1f (+%.2f%%) %.1f (+%.2f%%)\n", tools[tool], http,
             Improvement(results[0][0].mean_final, http), json,
             Improvement(results[1][0].mean_final, json), average,
             Improvement(eof_avg, average));
    }
  }
  printf("\nPaper: EOF +100.0%%/+14.4%% vs GDBFuzz, +81.1%%/+125.2%% vs SHIFT "
         "(HTTP/JSON).\n");

  printf("\n=== Figure 8: app-level coverage growth ===\n");
  for (int target = 0; target < 2; ++target) {
    printf("\n--- %s ---\n%-8s | %-10s %-10s %-10s\n", entries[target], "t(min)", "EOF",
           "GDBFuzz", "SHIFT");
    size_t rows = SIZE_MAX;
    for (int tool = 0; tool < 3; ++tool) {
      if (results[target][tool].ok) {
        rows = std::min(rows, results[target][tool].band.time.size());
      }
    }
    if (rows == SIZE_MAX) {
      continue;
    }
    for (size_t i = 0; i < rows; ++i) {
      printf("%-8llu |",
             static_cast<unsigned long long>(results[target][0].band.time[i] /
                                             kVirtualMinute));
      for (int tool = 0; tool < 3; ++tool) {
        printf(" %-10.1f", results[target][tool].band.mean[i]);
      }
      printf("\n");
    }
  }
  printf("\nExpected shape (paper Fig. 8): curves flatten after the first sixth of the "
         "budget; EOF saturates highest.\n");
  return 0;
}
