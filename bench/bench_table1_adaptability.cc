// Regenerates Table 1: supported targets (OS x architecture) for EOF, GDBFuzz, Tardis,
// and SHIFT. EOF's rows come from the live OS registry + board catalog (an entry is
// supported when a catalog board of that architecture exposes a debug port and fits the
// image); the other tools' capability models follow their published designs.

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/image_builder.h"
#include "src/hw/board_catalog.h"
#include "src/kernel/os.h"
#include "src/os/all_oses.h"

using namespace eof;

namespace {

// Can EOF drive `os_name` on some catalog board of `arch`? Requires a non-emulated board
// with a debug port whose flash fits the instrumented image.
bool EofSupports(const std::string& os_name, Arch arch) {
  auto info = OsRegistry::Instance().Find(os_name);
  if (!info.ok()) {
    return false;
  }
  for (const std::string& board_name : KnownBoardNames()) {
    BoardSpec spec = BoardSpecByName(board_name).value();
    if (spec.arch != arch || spec.emulated || !spec.has_debug_port) {
      continue;
    }
    ImageBuildOptions build;
    build.os_name = os_name;
    if (BuildImage(spec, build).ok()) {
      return true;
    }
  }
  return false;
}

// Published capability matrices of the comparison tools.
bool GdbFuzzSupports(const std::string& target, Arch arch) {
  if (target != "applications") {
    return false;  // no full-OS testing
  }
  return arch == Arch::kArm || arch == Arch::kMsp430;
}

bool TardisSupports(const std::string& target, Arch arch) {
  if (target == "applications") {
    return false;
  }
  if (target == "freertos") {
    return arch == Arch::kArm || arch == Arch::kRiscV;
  }
  return arch == Arch::kArm;  // RT-Thread / NuttX / Zephyr QEMU machines
}

bool ShiftSupports(const std::string& target, Arch arch) {
  if (target == "freertos" || target == "applications") {
    return arch == Arch::kArm || arch == Arch::kRiscV || arch == Arch::kPowerPc ||
           arch == Arch::kMips;
  }
  return false;
}

const char* Mark(bool supported) { return supported ? "yes" : "-"; }

}  // namespace

int main() {
  if (!RegisterAllOses().ok()) {
    fprintf(stderr, "OS registration failed\n");
    return 1;
  }
  printf("=== Table 1: supported targets (EOF vs GDBFuzz vs Tardis vs SHIFT) ===\n\n");
  printf("%-14s %-9s %-6s %-8s %-7s %-6s\n", "Target", "Arch", "EOF", "GDBFuzz", "Tardis",
         "SHIFT");

  struct Row {
    const char* target;
    Arch arch;
  };
  const std::vector<Row> rows = {
      {"FreeRTOS", Arch::kArm},      {"FreeRTOS", Arch::kRiscV},
      {"FreeRTOS", Arch::kPowerPc},  {"FreeRTOS", Arch::kMips},
      {"RT-Thread", Arch::kArm},     {"NuttX", Arch::kArm},
      {"Zephyr", Arch::kArm},        {"Applications", Arch::kArm},
      {"Applications", Arch::kRiscV}, {"Applications", Arch::kPowerPc},
      {"Applications", Arch::kMips}, {"Applications", Arch::kMsp430},
  };
  auto canonical = [](const char* target) -> std::string {
    std::string name = target;
    if (name == "FreeRTOS") {
      return "freertos";
    }
    if (name == "RT-Thread") {
      return "rtthread";
    }
    if (name == "NuttX") {
      return "nuttx";
    }
    if (name == "Zephyr") {
      return "zephyr";
    }
    return "applications";
  };

  for (const Row& row : rows) {
    std::string os_name = canonical(row.target);
    // "Applications" = app-level fuzzing: EOF supports it wherever FreeRTOS (the app
    // host) deploys.
    bool eof = os_name == "applications" ? EofSupports("freertos", row.arch)
                                         : EofSupports(os_name, row.arch);
    printf("%-14s %-9s %-6s %-8s %-7s %-6s\n", row.target, ArchName(row.arch), Mark(eof),
           Mark(GdbFuzzSupports(os_name, row.arch)),
           Mark(TardisSupports(os_name, row.arch)), Mark(ShiftSupports(os_name, row.arch)));
  }
  printf("\nPoKOS (GUSTAVE's target) additionally deploys on: ");
  for (Arch arch : {Arch::kArm, Arch::kRiscV}) {
    if (EofSupports("pokos", arch)) {
      printf("%s ", ArchName(arch));
    }
  }
  printf("(EOF)\n");
  return 0;
}
