// Directed-scheduling + double-buffered-drain bench, the attribution PR's two
// performance claims under one gate:
//
//  A. Drain overlap. Two exec-capped FreeRTOS campaigns on the hifive1-revb
//     (192-entry coverage ring, instrumentation on — the ring overflows on
//     ordinary programs, so mid-exec drains are the common case), identical
//     except for the overlapped_drain flag. The double-buffered drain must leave
//     coverage bit-identical while cutting the campaign's virtual time by at
//     least 1.3x — the drain's round trip rides the next continue instead of
//     paying its own link-latency charge.
//
//  B. Directed mode. Two budget-capped campaigns, identical except --directed.
//     The frontier-focused generator must reach the undirected campaign's final
//     coverage sooner (virtual time to target, read off the coverage series).
//
//  C. The directed campaign journals to JSONL; the strict report parser must
//     load it and surface the attribution counters — a malformed row or a
//     type regression in the new fields fails the bench, not just the render.
//
// Emits machine-readable BENCH_directed_drain.json for CI.

#include <chrono>
#include <cstdio>
#include <string>

#include "src/common/logging.h"
#include "src/core/campaign.h"
#include "src/core/fuzzer.h"
#include "src/os/all_oses.h"
#include "src/telemetry/report.h"

using namespace eof;

namespace {

constexpr char kJournalPath[] = "BENCH_directed_drain.jsonl";

struct Run {
  uint64_t execs = 0;
  uint64_t coverage = 0;
  uint64_t directed_hits = 0;
  uint64_t frontier = 0;
  VirtualTime elapsed = 0;
  std::vector<CampaignSample> series;
  double wall_sec = 0;
};

// Chatty, crash-light campaign: generation confined to the pseudo-call subsystem
// (semaphore ping-pong and worker-pipeline loops — hundreds of instrumentation
// events per call) keeps the hifive1's 192-entry ring overflowing mid-exec, so
// instrumentation stalls are the common case. Plain mode pays a background-poll
// pickup (kCovStallPollCost) at every stall; overlapped mode's self-service bank
// flips absorb every other stall and ride the drain on the next continue.
FuzzerConfig DrainConfig(bool overlapped, uint64_t max_execs) {
  FuzzerConfig config;
  config.os_name = "freertos";
  config.board_name = "hifive1-revb";
  config.seed = 11;
  config.budget = 24 * kVirtualHour;
  config.max_execs = max_execs;
  config.sample_points = 8;
  config.overlapped_drain = overlapped;
  // Pseudo-calls only, with instrumentation confined to their module (the paper's
  // Table-4 subsystem confinement): the loop bodies emit an event per round, so
  // every call pushes O(100) entries at the 192-entry ring, while the uninstrumented
  // rest of the image keeps the inter-call settling delay at its base cost.
  config.gen.allowed_subsystems = {"pseudo"};
  config.gen.max_calls = 32;  // long programs amortize per-exec mailbox/restore costs
  config.instrumentation.module_filter = {"freertos/pseudo"};
  // Bias scalars to the interesting-value pool — loop counts land at their declared
  // ceilings far more often, which is exactly the coverage-heavy regime this gate is
  // about (bucketed loop edges need high trip counts to surface).
  config.gen.wild_scalar_per_mille = 1000;
  // Seed the corpus at the constraint ceilings — a full ping-pong emits ~513 events
  // and a full pipeline ~98, cycling the ring several times in one program.
  std::string pingpong;
  std::string pipeline;
  for (int i = 0; i < 24; ++i) {
    pingpong += "r" + std::to_string(i) + " = syz_sem_pingpong(0x200)\n";
    pipeline += "r" + std::to_string(i) + " = syz_worker_pipeline(0x10, 0x40)\n";
  }
  config.seed_programs = {pingpong, pipeline};
  return config;
}

FuzzerConfig DirectedConfig(bool directed, VirtualDuration budget) {
  FuzzerConfig config;
  config.os_name = "freertos";
  config.seed = 9;
  config.budget = budget;
  config.sample_points = 48;  // fine-grained series: time-to-target resolution
  config.directed = directed;
  if (directed) {
    config.metrics_out = kJournalPath;
    config.metrics_interval = budget / 16;
  }
  return config;
}

bool RunOne(const FuzzerConfig& config, const char* label, Run* out) {
  EofFuzzer fuzzer(config);
  auto start = std::chrono::steady_clock::now();
  auto result = fuzzer.Run();
  out->wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (!result.ok()) {
    fprintf(stderr, "campaign(%s) failed: %s\n", label,
            result.status().ToString().c_str());
    return false;
  }
  out->execs = result->execs;
  out->coverage = result->final_coverage;
  out->directed_hits = result->directed_hits;
  out->frontier = result->frontier;
  out->elapsed = result->elapsed;
  out->series = result->series;
  return true;
}

// First series time at which `coverage` was reached; 0 when never.
VirtualTime TimeToCoverage(const Run& run, uint64_t target) {
  for (const CampaignSample& sample : run.series) {
    if (sample.coverage >= target) {
      return sample.time;
    }
  }
  return 0;
}

}  // namespace

int main() {
  if (!RegisterAllOses().ok()) {
    fprintf(stderr, "OS registration failed\n");
    return 1;
  }
  SetMinLogSeverity(LogSeverity::kError);
  bool ok = true;

  // --- Part A: double-buffered drain ---------------------------------------
  constexpr uint64_t kDrainExecs = 400;
  printf("== A: drain overlap, FreeRTOS on hifive1-revb, %llu execs each ==\n",
         static_cast<unsigned long long>(kDrainExecs));
  Run plain, overlapped;
  if (!RunOne(DrainConfig(false, kDrainExecs), "plain-drain", &plain) ||
      !RunOne(DrainConfig(true, kDrainExecs), "overlapped-drain", &overlapped)) {
    return 1;
  }
  double overlap_ratio =
      overlapped.elapsed > 0 ? double(plain.elapsed) / double(overlapped.elapsed) : 0;
  printf("%-12s %10s %10s %14s\n", "drain", "execs", "coverage", "elapsed_vs");
  printf("%-12s %10llu %10llu %14.1f\n", "plain",
         static_cast<unsigned long long>(plain.execs),
         static_cast<unsigned long long>(plain.coverage),
         double(plain.elapsed) / kVirtualSecond);
  printf("%-12s %10llu %10llu %14.1f\n", "overlapped",
         static_cast<unsigned long long>(overlapped.execs),
         static_cast<unsigned long long>(overlapped.coverage),
         double(overlapped.elapsed) / kVirtualSecond);
  printf("overlap saves: plain/overlapped = %.2fx virtual time\n", overlap_ratio);
  if (plain.coverage != overlapped.coverage) {
    fprintf(stderr, "FAIL: overlapped drain changed coverage (%llu vs %llu)\n",
            static_cast<unsigned long long>(plain.coverage),
            static_cast<unsigned long long>(overlapped.coverage));
    ok = false;
  }
  if (overlap_ratio < 1.3) {
    fprintf(stderr, "FAIL: drain overlap saves only %.2fx virtual time (need 1.3x)\n",
            overlap_ratio);
    ok = false;
  }

  // --- Part B: directed scheduling -----------------------------------------
  VirtualDuration budget = ScaledCampaignBudget() / 16;
  printf("\n== B: directed vs undirected, FreeRTOS, %llu virtual seconds each ==\n",
         static_cast<unsigned long long>(budget / kVirtualSecond));
  Run undirected, directed;
  if (!RunOne(DirectedConfig(false, budget), "undirected", &undirected) ||
      !RunOne(DirectedConfig(true, budget), "directed", &directed)) {
    return 1;
  }
  // Target: the coverage the undirected campaign ended with. Directed must get
  // there in less virtual time (and therefore fewer executions).
  uint64_t target = undirected.coverage;
  VirtualTime undirected_t = TimeToCoverage(undirected, target);
  VirtualTime directed_t = TimeToCoverage(directed, target);
  printf("%-12s %10s %10s %14s %14s\n", "mode", "execs", "coverage", "t_target_vs",
         "directed_hits");
  printf("%-12s %10llu %10llu %14.1f %14s\n", "undirected",
         static_cast<unsigned long long>(undirected.execs),
         static_cast<unsigned long long>(undirected.coverage),
         double(undirected_t) / kVirtualSecond, "-");
  printf("%-12s %10llu %10llu %14.1f %14llu\n", "directed",
         static_cast<unsigned long long>(directed.execs),
         static_cast<unsigned long long>(directed.coverage),
         double(directed_t) / kVirtualSecond,
         static_cast<unsigned long long>(directed.directed_hits));
  if (directed_t == 0) {
    fprintf(stderr, "FAIL: directed campaign never reached the undirected target "
                    "coverage %llu\n",
            static_cast<unsigned long long>(target));
    ok = false;
  } else if (directed_t >= undirected_t) {
    fprintf(stderr,
            "FAIL: directed reached coverage %llu at %.1fvs, undirected at %.1fvs\n",
            static_cast<unsigned long long>(target),
            double(directed_t) / kVirtualSecond,
            double(undirected_t) / kVirtualSecond);
    ok = false;
  }
  if (directed.directed_hits == 0) {
    fprintf(stderr, "FAIL: directed campaign claimed no frontier hits\n");
    ok = false;
  }

  // --- Part C: journal through the strict report parser --------------------
  auto report = telemetry::LoadReportFromFile(kJournalPath);
  if (!report.ok()) {
    fprintf(stderr, "FAIL: strict report parser refused the directed journal: %s\n",
            report.status().ToString().c_str());
    ok = false;
  } else {
    printf("\n== C: eof-report over %s ==\n", kJournalPath);
    printf("report: coverage=%llu directed_hits=%llu frontier=%llu\n",
           static_cast<unsigned long long>(report->final_coverage),
           static_cast<unsigned long long>(report->directed_hits),
           static_cast<unsigned long long>(report->frontier));
    if (report->final_coverage != directed.coverage) {
      fprintf(stderr, "FAIL: journaled coverage %llu != campaign coverage %llu\n",
              static_cast<unsigned long long>(report->final_coverage),
              static_cast<unsigned long long>(directed.coverage));
      ok = false;
    }
    if (report->directed_hits != directed.directed_hits) {
      fprintf(stderr, "FAIL: journaled directed_hits %llu != campaign %llu\n",
              static_cast<unsigned long long>(report->directed_hits),
              static_cast<unsigned long long>(directed.directed_hits));
      ok = false;
    }
  }

  FILE* json = fopen("BENCH_directed_drain.json", "w");
  if (json != nullptr) {
    fprintf(json,
            "{\n"
            "  \"overlap\": {\"execs\": %llu, \"coverage\": %llu,"
            " \"plain_elapsed_vus\": %llu, \"overlapped_elapsed_vus\": %llu,"
            " \"time_ratio\": %.4f, \"wall_sec\": %.3f},\n"
            "  \"directed\": {\"budget_vus\": %llu, \"target_coverage\": %llu,"
            " \"undirected_t_target_vus\": %llu, \"directed_t_target_vus\": %llu,"
            " \"undirected_coverage\": %llu, \"directed_coverage\": %llu,"
            " \"directed_hits\": %llu, \"frontier\": %llu, \"wall_sec\": %.3f}\n"
            "}\n",
            static_cast<unsigned long long>(kDrainExecs),
            static_cast<unsigned long long>(overlapped.coverage),
            static_cast<unsigned long long>(plain.elapsed),
            static_cast<unsigned long long>(overlapped.elapsed), overlap_ratio,
            plain.wall_sec + overlapped.wall_sec,
            static_cast<unsigned long long>(budget),
            static_cast<unsigned long long>(target),
            static_cast<unsigned long long>(undirected_t),
            static_cast<unsigned long long>(directed_t),
            static_cast<unsigned long long>(undirected.coverage),
            static_cast<unsigned long long>(directed.coverage),
            static_cast<unsigned long long>(directed.directed_hits),
            static_cast<unsigned long long>(directed.frontier),
            undirected.wall_sec + directed.wall_sec);
    fclose(json);
    printf("wrote BENCH_directed_drain.json\n");
  }
  return ok ? 0 : 1;
}
