// Regenerates Table 3: branch coverage of EOF vs EOF-nf vs Tardis on the four embedded
// OSs, and vs GUSTAVE on PoKOS. Values are means over the repetitions; parentheses give
// EOF's improvement, as in the paper.
//
// Absolute branch counts are smaller than the paper's (the simulated kernels are smaller
// than the real ones); the comparisons and their ordering are the reproduction target.

#include <cstdio>

#include "src/baselines/baselines.h"
#include "src/baselines/byte_fuzzer.h"
#include "src/core/campaign.h"
#include "src/os/all_oses.h"

using namespace eof;

namespace {

double Improvement(double eof, double other) {
  return other > 0 ? (eof - other) / other * 100.0 : 0;
}

}  // namespace

int main() {
  if (!RegisterAllOses().ok()) {
    fprintf(stderr, "OS registration failed\n");
    return 1;
  }
  VirtualDuration budget = ScaledCampaignBudget();
  int reps = ScaledRepetitions();
  printf("=== Table 3: coverage, EOF vs EOF-nf vs Tardis vs GUSTAVE "
         "(%llu virtual min x %d reps) ===\n\n",
         static_cast<unsigned long long>(budget / kVirtualMinute), reps);
  printf("%-10s %-10s %-20s %-20s %-20s\n", "Target", "EOF", "EOF-nf", "Tardis", "Gustave");

  for (const char* os : {"nuttx", "rtthread", "zephyr", "freertos", "pokos"}) {
    auto eof_runs = RunRepeated(EofConfig(os, 201, budget), reps);
    if (!eof_runs.ok()) {
      fprintf(stderr, "%s: %s\n", os, eof_runs.status().ToString().c_str());
      return 1;
    }
    double eof = eof_runs.value().MeanFinalCoverage();

    auto nf_runs = RunRepeated(EofNfConfig(os, 201, budget), reps);
    double nf = nf_runs.ok() ? nf_runs.value().MeanFinalCoverage() : 0;

    std::string tardis_cell = "-";
    std::string gustave_cell = "-";
    if (std::string(os) != "pokos") {
      auto tardis_runs = RunRepeated(TardisConfig(os, 201, budget), reps);
      if (tardis_runs.ok()) {
        double tardis = tardis_runs.value().MeanFinalCoverage();
        char buf[64];
        snprintf(buf, sizeof(buf), "%.1f (+%.2f%%)", tardis, Improvement(eof, tardis));
        tardis_cell = buf;
      }
    } else {
      // GUSTAVE: byte-buffer syscall tape on QEMU.
      double total = 0;
      int ok_runs = 0;
      for (int rep = 0; rep < reps; ++rep) {
        ByteFuzzerConfig config;
        config.mode = ByteFuzzerMode::kGustave;
        config.os_name = "pokos";
        config.seed = 201 + static_cast<uint64_t>(rep) * 7919;
        config.budget = budget;
        ByteFuzzer fuzzer(config);
        auto run = fuzzer.Run();
        if (run.ok()) {
          total += static_cast<double>(run.value().final_coverage);
          ++ok_runs;
        }
      }
      if (ok_runs > 0) {
        double gustave = total / ok_runs;
        char buf[64];
        snprintf(buf, sizeof(buf), "%.1f (+%.2f%%)", gustave, Improvement(eof, gustave));
        gustave_cell = buf;
      }
    }

    char nf_cell[64];
    snprintf(nf_cell, sizeof(nf_cell), "%.1f (+%.2f%%)", nf, Improvement(eof, nf));
    printf("%-10s %-10.1f %-20s %-20s %-20s\n", os, eof, nf_cell, tardis_cell.c_str(),
           gustave_cell.c_str());
  }
  printf("\nPaper (24 h): EOF-nf improvements +24.4%% .. +66.7%%; Tardis +17.8%% .. "
         "+54.6%%; GUSTAVE +25.97%% (PoKOS).\n");
  return 0;
}
