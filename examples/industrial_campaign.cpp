// Industrial-control scenario: fuzz the RT-Thread target on the STM32H745-class
// controller board (the paper's motivating deployment) for a short campaign, then print
// the coverage curve, liveness events, and any Table-2 bugs with their crash reports.
//
//   $ ./build/examples/industrial_campaign [virtual-minutes]

#include <cstdio>
#include <cstdlib>

#include "src/core/bug_catalog.h"
#include "src/core/fuzzer.h"
#include "src/os/all_oses.h"

using namespace eof;

int main(int argc, char** argv) {
  if (!RegisterAllOses().ok()) {
    fprintf(stderr, "OS registration failed\n");
    return 1;
  }
  uint64_t minutes = argc > 1 ? strtoull(argv[1], nullptr, 10) : 90;

  FuzzerConfig config;
  config.os_name = "rtthread";
  config.board_name = "stm32h745-nucleo";
  config.budget = minutes * kVirtualMinute;
  config.sample_points = 12;
  config.seed = 42;

  printf("fuzzing %s on %s for %llu virtual minutes...\n", config.os_name.c_str(),
         config.board_name.c_str(), static_cast<unsigned long long>(minutes));
  EofFuzzer fuzzer(config);
  auto result_or = fuzzer.Run();
  if (!result_or.ok()) {
    fprintf(stderr, "campaign failed: %s\n", result_or.status().ToString().c_str());
    return 1;
  }
  const CampaignResult& result = result_or.value();

  printf("\ncoverage growth (branches):\n");
  for (const CampaignSample& sample : result.series) {
    printf("  t=%5llum  %llu\n",
           static_cast<unsigned long long>(sample.time / kVirtualMinute),
           static_cast<unsigned long long>(sample.coverage));
  }
  printf("\nexecs=%llu  crashes=%llu  stalls=%llu  link-timeouts=%llu  restores=%llu\n",
         static_cast<unsigned long long>(result.execs),
         static_cast<unsigned long long>(result.crashes),
         static_cast<unsigned long long>(result.stalls),
         static_cast<unsigned long long>(result.timeouts),
         static_cast<unsigned long long>(result.restores));

  if (result.bugs.empty()) {
    printf("\nno bugs this time — try a longer budget\n");
    return 0;
  }
  printf("\nbugs found:\n");
  for (const BugReport& bug : result.bugs) {
    const BugInfo* info = FindBug(bug.catalog_id);
    printf("  #%d %s [%s monitor] %s\n", bug.catalog_id,
           info != nullptr ? info->operation.c_str() : "(unknown)", bug.detector.c_str(),
           info != nullptr && info->confirmed ? "(confirmed upstream)" : "");
    printf("    crash: %.96s\n", bug.excerpt.c_str());
    printf("    reproducer:\n");
    for (const char* line = bug.program_text.c_str(); *line != '\0';) {
      const char* end = line;
      while (*end != '\0' && *end != '\n') {
        ++end;
      }
      printf("      %.*s\n", static_cast<int>(end - line), line);
      line = *end == '\0' ? end : end + 1;
    }
  }
  return 0;
}
