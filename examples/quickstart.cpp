// Quickstart: deploy a FreeRTOS target on an ESP32-class board, drive one hand-written
// test case through the debug port (the Figure-4 protocol), and read back status,
// coverage, and the UART log.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "src/agent/wire.h"
#include "src/core/deployment.h"
#include "src/kernel/os.h"
#include "src/os/all_oses.h"

using namespace eof;

int main() {
  if (!RegisterAllOses().ok()) {
    fprintf(stderr, "OS registration failed\n");
    return 1;
  }

  // 1. Deploy: build the instrumented image, flash it over the debug port, boot.
  DeployOptions options;
  options.os_name = "freertos";  // default board: esp32-devkitc
  auto deployment_or = Deployment::Create(options);
  if (!deployment_or.ok()) {
    fprintf(stderr, "deploy failed: %s\n", deployment_or.status().ToString().c_str());
    return 1;
  }
  Deployment& target = *deployment_or.value();
  printf("deployed %s on %s (image %.2f MB)\n", target.image().os_name().c_str(),
         target.board_spec().name.c_str(),
         static_cast<double>(target.image().size_bytes()) / (1024 * 1024));
  printf("boot log:\n%s\n", target.port().DrainUart().c_str());

  // 2. Park the agent at executor_main (the synchronisation breakpoint of Figure 4).
  uint64_t executor_main = target.SymbolAddress("executor_main").value();
  (void)target.port().SetBreakpoint(executor_main);
  auto parked = target.port().Continue();
  if (!parked.ok() || parked.value().symbol != "executor_main") {
    fprintf(stderr, "agent did not park\n");
    return 1;
  }

  // 3. Hand-write a test case: create a queue, send to it, read the depth.
  std::unique_ptr<Os> os = OsRegistry::Instance().Find("freertos").value().factory();
  WireProgram program;
  {
    WireCall create;
    create.api_id = os->registry().FindByName("xQueueCreate")->id;
    create.args = {WireArg::Scalar(8), WireArg::Scalar(16)};
    program.calls.push_back(create);

    WireCall send;
    send.api_id = os->registry().FindByName("xQueueSend")->id;
    send.args = {WireArg::ResultRef(0), WireArg::Bytes({'h', 'i'}), WireArg::Scalar(0)};
    program.calls.push_back(send);

    WireCall waiting;
    waiting.api_id = os->registry().FindByName("uxQueueMessagesWaiting")->id;
    waiting.args = {WireArg::ResultRef(0)};
    program.calls.push_back(waiting);
  }

  // 4. Publish via the mailbox and resume; the agent deserializes and executes.
  (void)target.WriteTestCase(EncodeProgram(program));
  (void)target.port().Continue();

  auto status = target.ReadAgentStatus().value();
  printf("program executed: %u calls, error=%u\n", status.total_calls,
         static_cast<unsigned>(status.last_error));

  // 5. Drain the coverage ring: the branches the test case touched.
  auto coverage = target.DrainCoverage().value();
  printf("coverage entries collected: %zu\n", coverage.size());
  printf("target PC now: 0x%llx\n",
         static_cast<unsigned long long>(target.port().ReadPC().value()));
  return 0;
}
