// Crash triage walkthrough: reproduce the paper's Figure-6 case study (bug #12,
// rt_serial_write on a stale console device) step by step — arm the exception monitor,
// run the triggering sequence, capture the backtrace from the UART, watch the plain
// reboot fail to matter, and recover with the reflash path.
//
//   $ ./build/examples/crash_triage

#include <cstdio>

#include "src/agent/wire.h"
#include "src/core/deployment.h"
#include "src/core/monitors.h"
#include "src/kernel/os.h"
#include "src/os/all_oses.h"

using namespace eof;

namespace {

uint32_t ApiId(const Os& os, const char* name) {
  const ApiSpec* spec = os.registry().FindByName(name);
  return spec != nullptr ? spec->id : 0;
}

}  // namespace

int main() {
  if (!RegisterAllOses().ok()) {
    fprintf(stderr, "OS registration failed\n");
    return 1;
  }
  DeployOptions options;
  options.os_name = "rtthread";
  auto deployment_or = Deployment::Create(options);
  if (!deployment_or.ok()) {
    fprintf(stderr, "deploy failed: %s\n", deployment_or.status().ToString().c_str());
    return 1;
  }
  Deployment& target = *deployment_or.value();
  (void)target.port().DrainUart();

  // Exception monitor: breakpoint on RT-Thread's common_exception().
  ExceptionMonitor exception_monitor;
  if (!exception_monitor.Arm(target, "common_exception").ok()) {
    fprintf(stderr, "could not arm the exception monitor\n");
    return 1;
  }
  uint64_t executor_main = target.SymbolAddress("executor_main").value();
  (void)target.port().SetBreakpoint(executor_main);
  (void)target.port().Continue();  // park at executor_main

  // The Figure-6 trigger: warm the console TX path, unregister the console device while
  // the console still points at it, then create a socket — sal_socket's log message rides
  // the stale serial pointer into the fault.
  std::unique_ptr<Os> os = OsRegistry::Instance().Find("rtthread").value().factory();
  WireProgram program;
  auto call = [&](uint32_t api, std::vector<WireArg> args) {
    WireCall c;
    c.api_id = api;
    c.args = std::move(args);
    program.calls.push_back(std::move(c));
  };
  call(ApiId(*os, "rt_device_find"), {WireArg::Bytes({'u', 'a', 'r', 't', '1'})});
  call(ApiId(*os, "rt_device_open"), {WireArg::ResultRef(0), WireArg::Scalar(0x043)});
  for (int i = 0; i < 4; ++i) {
    call(ApiId(*os, "rt_device_write"),
         {WireArg::ResultRef(0), WireArg::Bytes({'l', 'o', 'g', '\n'})});
  }
  call(ApiId(*os, "rt_console_set_device"), {WireArg::Bytes({'u', 'a', 'r', 't', '1'})});
  call(ApiId(*os, "rt_device_unregister"), {WireArg::ResultRef(0)});
  call(ApiId(*os, "syz_create_bind_socket"),
       {WireArg::Scalar(2), WireArg::Scalar(1), WireArg::Scalar(0), WireArg::Scalar(8080)});

  printf("running the Figure-6 sequence (%zu calls)...\n", program.calls.size());
  (void)target.WriteTestCase(EncodeProgram(program));
  auto stop = target.port().Continue();
  if (!stop.ok()) {
    fprintf(stderr, "continue failed: %s\n", stop.status().ToString().c_str());
    return 1;
  }
  if (exception_monitor.IsExceptionStop(stop.value())) {
    printf("\nexception monitor: target stopped at %s\n", stop.value().symbol.c_str());
  }
  printf("\nUART capture (the Figure-6 backtrace):\n%s\n", target.port().DrainUart().c_str());

  // A plain reboot works here (no flash damage), but demonstrate the full restoration
  // path the fuzzer uses after any unrecoverable state.
  printf("state restoration: reflash + reboot... ");
  if (target.ReflashAndReboot().ok() &&
      target.board().power_state() == PowerState::kRunning) {
    printf("target healthy again\n");
    return 0;
  }
  printf("FAILED\n");
  return 1;
}
