// Specification-pipeline tour: mine Syzlang from a target OS's API surface (the GPT-4o
// substitute), inject extraction noise, and watch post-validation repair and admit the
// specifications — then generate a few programs from them.
//
//   $ ./build/examples/spec_tour [os-name]

#include <cstdio>
#include <cstring>

#include "src/fuzz/generator.h"
#include "src/kernel/os.h"
#include "src/os/all_oses.h"
#include "src/spec/spec_miner.h"

using namespace eof;

int main(int argc, char** argv) {
  if (!RegisterAllOses().ok()) {
    fprintf(stderr, "OS registration failed\n");
    return 1;
  }
  const char* os_name = argc > 1 ? argv[1] : "zephyr";
  auto info = OsRegistry::Instance().Find(os_name);
  if (!info.ok()) {
    fprintf(stderr, "unknown OS '%s'\n", os_name);
    return 1;
  }
  std::unique_ptr<Os> os = info.value().factory();

  // Mine with deliberate extraction noise, as imperfect LLM output would arrive.
  spec::MinerOptions miner;
  miner.noise_per_mille = 60;
  miner.seed = 1234;
  auto mined_or = spec::MineValidatedSpecs(os->registry(), miner);
  if (!mined_or.ok()) {
    fprintf(stderr, "mining failed: %s\n", mined_or.status().ToString().c_str());
    return 1;
  }
  const spec::MinedSpecs& mined = mined_or.value();

  printf("=== validated Syzlang for %s (first 40 lines) ===\n", os_name);
  int lines = 0;
  for (const char* p = mined.source.c_str(); *p != '\0' && lines < 40; ++p) {
    putchar(*p);
    if (*p == '\n') {
      ++lines;
    }
  }
  printf("...\n\n=== post-validation ===\n");
  printf("admitted: %zu of %zu target APIs\n", mined.specs.calls.size(),
         os->registry().size());
  printf("parse-repair rounds: %d\n", mined.repair_rounds);
  for (const std::string& rejection : mined.rejected) {
    printf("rejected: %s\n", rejection.c_str());
  }

  printf("\n=== three generated programs ===\n");
  fuzz::Generator generator(mined.specs, fuzz::GeneratorOptions{}, 7);
  for (int i = 0; i < 3; ++i) {
    fuzz::Program program = generator.Generate();
    printf("--- program %d ---\n%s", i + 1, program.Format(mined.specs).c_str());
  }
  return 0;
}
