// eof — command-line front end, the operator's entry point (the role of the Golang engine
// binary in the paper's released tool).
//
//   eof list-targets                          supported OSs, boards, and API counts
//   eof mine-specs <os>                       print the validated Syzlang for a target
//   eof fuzz <os> [minutes] [seed] [board]    run a campaign, print live-ish summary
//   eof report <journal.jsonl> [--json]       analyze a --metrics-out campaign journal
//   eof repro <os> <bug-id>                   run a catalog bug's reproducer
//   eof bugs                                  print the bug catalog

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/agent/wire.h"
#include "src/fleet/observer.h"
#include "src/fleet/orchestrator.h"
#include "src/fleet/status_http.h"
#include "src/fleet/transport.h"
#include "src/fleet/worker.h"
#include "src/core/board_farm.h"
#include "src/core/bug_catalog.h"
#include "src/core/deployment.h"
#include "src/core/fuzzer.h"
#include "src/core/monitors.h"
#include "src/core/replay.h"
#include "src/hw/board_catalog.h"
#include "src/kernel/os.h"
#include "src/os/all_oses.h"
#include "src/spec/spec_miner.h"
#include "src/telemetry/report.h"
#include "src/telemetry/trace_export.h"

using namespace eof;

namespace {

int Usage() {
  fprintf(stderr,
          "usage:\n"
          "  eof list-targets\n"
          "  eof mine-specs <os>\n"
          "  eof fuzz <os> [minutes=60] [seed=1] [board=default] [--jobs N]\n"
          "           [--restore-mode reflash|snapshot] [--directed] [--trim]\n"
          "           [--overlapped-drain on|off]\n"
          "           [--metrics-out FILE.jsonl] [--metrics-interval SECONDS]\n"
          "  eof report <journal.jsonl|dir>... [--journal FILE]... [--json]\n"
          "           [--trace-out FILE.json]\n"
          "  eof serve <os> [minutes=60] [seed=1] [board=default] [--port N]\n"
          "           [--shards N] [--pool N] [--priority N] [--campaign-id ID]\n"
          "           [--heartbeat-interval MS] [--lease-timeout MS]\n"
          "           [--restore-mode reflash|snapshot] [--directed] [--trim]\n"
          "           [--metrics-out FILE.jsonl] [--metrics-interval SECONDS]\n"
          "           [--status-port N] [--journal-rotate-mb N]\n"
          "  eof worker --connect HOST:PORT [--boards N] [--name S]\n"
          "           [--metrics-out FILE.jsonl]\n"
          "  eof top --connect HOST:PORT [--campaign ID] [--interval SECONDS]\n"
          "           [--once]\n"
          "  eof repro <os> <bug-id>\n"
          "  eof replay <os> <reproducer-file>\n"
          "  eof trim <os> <reproducer-file> [board]\n"
          "  eof bugs\n");
  return 2;
}

int ListTargets() {
  printf("%-10s %-18s %-6s %s\n", "OS", "default board", "APIs", "description");
  for (const std::string& name : OsRegistry::Instance().Names()) {
    OsInfo info = OsRegistry::Instance().Find(name).value();
    std::unique_ptr<Os> os = info.factory();
    printf("%-10s %-18s %-6zu %s\n", name.c_str(), info.default_board.c_str(),
           os->registry().size(), info.description.c_str());
  }
  printf("\nboards:\n");
  for (const std::string& board : KnownBoardNames()) {
    BoardSpec spec = BoardSpecByName(board).value();
    printf("  %-18s %-8s %4u MHz  %4llu KiB RAM  %2d hw-bp%s\n", board.c_str(),
           ArchName(spec.arch), spec.clock_mhz,
           static_cast<unsigned long long>(spec.ram_bytes / 1024), spec.max_hw_breakpoints,
           spec.emulated ? "  (emulated)" : "");
  }
  return 0;
}

int MineSpecs(const std::string& os_name) {
  auto info = OsRegistry::Instance().Find(os_name);
  if (!info.ok()) {
    fprintf(stderr, "unknown OS '%s'\n", os_name.c_str());
    return 1;
  }
  std::unique_ptr<Os> os = info.value().factory();
  auto mined = spec::MineValidatedSpecs(os->registry());
  if (!mined.ok()) {
    fprintf(stderr, "%s\n", mined.status().ToString().c_str());
    return 1;
  }
  fputs(mined.value().source.c_str(), stdout);
  fprintf(stderr, "# %zu specifications validated\n", mined.value().specs.calls.size());
  return 0;
}

int Fuzz(const std::string& os_name, uint64_t minutes, uint64_t seed,
         const std::string& board, int jobs, RestoreMode restore_mode,
         const std::string& metrics_out, uint64_t metrics_interval_s, bool directed,
         bool trim, bool overlapped_drain) {
  FuzzerConfig config;
  config.os_name = os_name;
  config.board_name = board;
  config.seed = seed;
  config.budget = minutes * kVirtualMinute;
  config.sample_points = 12;
  config.restore_mode = restore_mode;
  config.metrics_out = metrics_out;
  config.directed = directed;
  config.trim = trim;
  config.overlapped_drain = overlapped_drain;
  if (metrics_interval_s > 0) {
    config.metrics_interval = metrics_interval_s * kVirtualSecond;
  }
  printf("fuzzing %s for %llu virtual minutes (seed %llu, %d board%s, %s restores)...\n",
         os_name.c_str(), static_cast<unsigned long long>(minutes),
         static_cast<unsigned long long>(seed), jobs, jobs == 1 ? "" : "s",
         restore_mode == RestoreMode::kSnapshot ? "snapshot" : "reflash");
  Result<CampaignResult> result = [&] {
    if (jobs > 1) {
      BoardFarm farm(config, jobs);
      return farm.Run();
    }
    EofFuzzer fuzzer(config);
    return fuzzer.Run();
  }();
  if (!result.ok()) {
    fprintf(stderr, "campaign failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const CampaignResult& campaign = result.value();
  for (const CampaignSample& sample : campaign.series) {
    printf("  t=%5llum  coverage=%llu\n",
           static_cast<unsigned long long>(sample.time / kVirtualMinute),
           static_cast<unsigned long long>(sample.coverage));
  }
  printf("execs=%llu coverage=%llu crashes=%llu stalls=%llu restores=%llu corpus=%llu\n",
         static_cast<unsigned long long>(campaign.execs),
         static_cast<unsigned long long>(campaign.final_coverage),
         static_cast<unsigned long long>(campaign.crashes),
         static_cast<unsigned long long>(campaign.stalls),
         static_cast<unsigned long long>(campaign.restores),
         static_cast<unsigned long long>(campaign.corpus_size));
  if (restore_mode == RestoreMode::kSnapshot) {
    printf("snapshot_restores=%llu snapshot_bytes=%llu rejected_sightings=%llu\n",
           static_cast<unsigned long long>(campaign.snapshot_restores),
           static_cast<unsigned long long>(campaign.snapshot_bytes),
           static_cast<unsigned long long>(campaign.bugs_rejected));
  }
  if (directed) {
    printf("directed_hits=%llu frontier=%llu\n",
           static_cast<unsigned long long>(campaign.directed_hits),
           static_cast<unsigned long long>(campaign.frontier));
  }
  if (trim) {
    printf("trim_kept_calls=%llu trim_removed_calls=%llu\n",
           static_cast<unsigned long long>(campaign.trim_kept_calls),
           static_cast<unsigned long long>(campaign.trim_removed_calls));
  }
  for (const BugReport& bug : campaign.bugs) {
    const BugInfo* info = FindBug(bug.catalog_id);
    printf("\nBUG #%d %s [%s monitor]\n%s\nreproducer:\n%s", bug.catalog_id,
           info != nullptr ? info->operation.c_str() : "(unknown)", bug.detector.c_str(),
           bug.excerpt.c_str(), bug.program_text.c_str());
  }
  return 0;
}

bool ReadFileText(const std::string& path, std::string* text) {
  FILE* file = fopen(path.c_str(), "rb");
  if (file == nullptr) {
    fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  char buffer[4096];
  size_t got;
  while ((got = fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text->append(buffer, got);
  }
  fclose(file);
  return true;
}

int Replay(const std::string& os_name, const std::string& path) {
  std::string text;
  if (!ReadFileText(path, &text)) {
    return 1;
  }
  auto outcome = ReplayReproducer(os_name, text);
  if (!outcome.ok()) {
    fprintf(stderr, "replay failed: %s\n", outcome.status().ToString().c_str());
    return 1;
  }
  if (!outcome.value().crashed) {
    printf("no crash: the reproducer ran to completion\n");
    return 0;
  }
  printf("CRASH [%s monitor]", outcome.value().detector.c_str());
  if (outcome.value().catalog_id != 0) {
    const BugInfo* info = FindBug(outcome.value().catalog_id);
    printf(" -> bug #%d (%s)", outcome.value().catalog_id,
           info != nullptr ? info->operation.c_str() : "?");
  }
  printf("\n%s\n", outcome.value().crash_text.c_str());
  return 0;
}

int Trim(const std::string& os_name, const std::string& path, const std::string& board) {
  std::string text;
  if (!ReadFileText(path, &text)) {
    return 1;
  }
  auto outcome = TrimReproducer(os_name, text, board);
  if (!outcome.ok()) {
    fprintf(stderr, "trim failed: %s\n", outcome.status().ToString().c_str());
    return 1;
  }
  const TrimOutcome& trim = outcome.value();
  fprintf(stderr, "trim: %zu -> %zu calls (%zu removed), coverage %llu -> %llu (%s)\n",
          trim.original_calls, trim.kept_calls, trim.removed_calls,
          static_cast<unsigned long long>(trim.original_coverage),
          static_cast<unsigned long long>(trim.trimmed_coverage),
          trim.coverage_preserved ? "preserved" : "NOT preserved — keep the original");
  fputs(trim.trimmed_text.c_str(), stdout);
  return trim.coverage_preserved ? 0 : 1;
}

// Expands a positional report argument: a directory becomes its *.jsonl files
// in name order (a fleet run drops one journal per process into one directory);
// anything else passes through as a file path. Partial files — `*.tmp`
// leftovers and zero-byte journals from a SIGKILLed writer — are skipped with
// a warning rather than failing the strict parse gate downstream.
bool ExpandJournalArg(const std::string& path, std::vector<std::string>* out) {
  struct stat st;
  if (stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    out->push_back(path);
    return true;
  }
  DIR* dir = opendir(path.c_str());
  if (dir == nullptr) {
    fprintf(stderr, "cannot open directory %s\n", path.c_str());
    return false;
  }
  std::vector<std::string> found;
  for (struct dirent* entry = readdir(dir); entry != nullptr;
       entry = readdir(dir)) {
    std::string name = entry->d_name;
    if (name.size() > 4 && name.rfind(".tmp") == name.size() - 4) {
      fprintf(stderr, "warning: skipping temporary file %s/%s\n", path.c_str(),
              name.c_str());
      continue;
    }
    if (name.size() > 6 && name.rfind(".jsonl") == name.size() - 6) {
      std::string full = path + "/" + name;
      struct stat fs;
      if (stat(full.c_str(), &fs) == 0 && fs.st_size == 0) {
        fprintf(stderr,
                "warning: skipping empty journal %s (killed writer?)\n",
                full.c_str());
        continue;
      }
      found.push_back(std::move(full));
    }
  }
  closedir(dir);
  if (found.empty()) {
    fprintf(stderr, "no usable *.jsonl journals in directory %s\n", path.c_str());
    return false;
  }
  std::sort(found.begin(), found.end());
  out->insert(out->end(), found.begin(), found.end());
  return true;
}

int Report(const std::vector<std::string>& paths, bool json,
           const std::string& trace_out) {
  auto rows = telemetry::LoadMergedJournalRows(paths);
  if (!rows.ok()) {
    fprintf(stderr, "report failed: %s\n", rows.status().ToString().c_str());
    return 1;
  }
  if (!trace_out.empty()) {
    std::string trace = telemetry::RenderChromeTrace(rows.value());
    FILE* file = fopen(trace_out.c_str(), "w");
    if (file == nullptr) {
      fprintf(stderr, "cannot write trace to %s\n", trace_out.c_str());
      return 1;
    }
    size_t written = fwrite(trace.data(), 1, trace.size(), file);
    fclose(file);
    if (written != trace.size()) {
      fprintf(stderr, "short write to %s\n", trace_out.c_str());
      return 1;
    }
    fprintf(stderr, "wrote Chrome trace (%zu bytes) to %s\n", trace.size(),
            trace_out.c_str());
  }
  telemetry::CampaignReport report = telemetry::BuildReport(rows.value());
  fputs(json ? report.RenderJson().c_str() : report.RenderText().c_str(), stdout);
  return 0;
}

int Serve(const std::string& os_name, uint64_t minutes, uint64_t seed,
          const std::string& board, const std::string& campaign_id, int shards,
          int priority, uint16_t port, fleet::Orchestrator::Options fleet_options,
          RestoreMode restore_mode, const std::string& metrics_out,
          uint64_t metrics_interval_s, bool directed, bool trim, int status_port) {
  FuzzerConfig config;
  config.os_name = os_name;
  config.board_name = board;
  config.seed = seed;
  config.budget = minutes * kVirtualMinute;
  config.sample_points = 12;
  config.restore_mode = restore_mode;
  config.directed = directed;
  config.trim = trim;
  if (metrics_interval_s > 0) {
    config.metrics_interval = metrics_interval_s * kVirtualSecond;
  }
  fleet_options.metrics_out = metrics_out;
  auto orchestrator = fleet::Orchestrator::Create(std::move(fleet_options));
  if (!orchestrator.ok()) {
    fprintf(stderr, "serve failed: %s\n", orchestrator.status().ToString().c_str());
    return 1;
  }
  fleet::FleetCampaignSpec spec;
  spec.campaign_id = campaign_id;
  spec.config = config;
  spec.shards = shards;
  spec.weight = priority;
  Status added = orchestrator.value()->AddCampaign(spec);
  if (!added.ok()) {
    fprintf(stderr, "serve failed: %s\n", added.ToString().c_str());
    return 1;
  }
  uint16_t bound_port = 0;
  auto listener = fleet::ListenTcp(port, &bound_port);
  if (!listener.ok()) {
    fprintf(stderr, "serve failed: %s\n", listener.status().ToString().c_str());
    return 1;
  }
  // Read-only status endpoint: /metrics renders the same bounded-staleness
  // snapshot the fleet observers poll, plus the orchestrator's own registry.
  std::unique_ptr<fleet::StatusHttpServer> status_server;
  if (status_port >= 0) {
    fleet::Orchestrator* orch = orchestrator.value().get();
    fleet::StatusHttpServer::Handlers handlers;
    handlers.metrics = [orch] {
      return fleet::RenderFleetMetrics(orch->HandleStatus(fleet::StatusRequestMsg{}),
                                       orch->MetricsSnapshot());
    };
    auto started = fleet::StatusHttpServer::Start(
        static_cast<uint16_t>(status_port), std::move(handlers));
    if (!started.ok()) {
      fprintf(stderr, "serve failed: %s\n", started.status().ToString().c_str());
      return 1;
    }
    status_server = std::move(started.value());
    printf("status endpoint on http://127.0.0.1:%u (GET /metrics, /healthz)\n",
           status_server->bound_port());
  }
  printf("serving campaign %s on 127.0.0.1:%u (%d shard%s, %llu virtual minutes, "
         "seed %llu)\n",
         campaign_id.c_str(), bound_port, shards, shards == 1 ? "" : "s",
         static_cast<unsigned long long>(minutes),
         static_cast<unsigned long long>(seed));
  fflush(stdout);
  Status served = orchestrator.value()->Serve(listener.value().get());
  if (status_server != nullptr) {
    status_server->Stop();
  }
  if (!served.ok()) {
    fprintf(stderr, "serve failed: %s\n", served.ToString().c_str());
    return 1;
  }
  for (const fleet::FleetCampaignResult& fleet_result : orchestrator.value()->Results()) {
    const CampaignResult& campaign = fleet_result.result;
    printf("campaign %s: execs=%llu coverage=%llu crashes=%llu corpus=%llu "
           "bugs=%zu\n",
           fleet_result.campaign_id.c_str(),
           static_cast<unsigned long long>(campaign.execs),
           static_cast<unsigned long long>(campaign.final_coverage),
           static_cast<unsigned long long>(campaign.crashes),
           static_cast<unsigned long long>(campaign.corpus_size),
           fleet_result.bugs.size());
    printf("fleet: workers=%llu leases_granted=%llu reclaimed=%llu lost=%llu "
           "corpus_syncs=%llu\n",
           static_cast<unsigned long long>(fleet_result.workers_served),
           static_cast<unsigned long long>(fleet_result.leases_granted),
           static_cast<unsigned long long>(fleet_result.leases_reclaimed),
           static_cast<unsigned long long>(fleet_result.workers_lost),
           static_cast<unsigned long long>(fleet_result.corpus_syncs));
    for (const fleet::BugWire& bug : fleet_result.bugs) {
      const BugInfo* info = FindBug(static_cast<int>(bug.catalog_id));
      printf("\nBUG #%u %s [%s monitor]\n%s\nreproducer:\n%s", bug.catalog_id,
             info != nullptr ? info->operation.c_str() : "(unknown)",
             bug.detector.c_str(), bug.excerpt.c_str(), bug.program_text.c_str());
    }
  }
  return 0;
}

// Splits "HOST:PORT" with a strict port range check; prints the usage error
// itself and returns false on malformed input.
bool ParseHostPort(const std::string& connect, std::string* host, uint16_t* port) {
  size_t colon = connect.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= connect.size()) {
    fprintf(stderr, "eof: --connect wants HOST:PORT, got '%s'\n", connect.c_str());
    return false;
  }
  *host = connect.substr(0, colon);
  char* end = nullptr;
  errno = 0;
  unsigned long long parsed = strtoull(connect.c_str() + colon + 1, &end, 10);
  if (errno != 0 || *end != '\0' || parsed == 0 || parsed > 65535) {
    fprintf(stderr, "eof: --connect wants a port in [1, 65535], got '%s'\n",
            connect.c_str() + colon + 1);
    return false;
  }
  *port = static_cast<uint16_t>(parsed);
  return true;
}

int Worker(const std::string& connect, int boards, const std::string& name,
           const std::string& metrics_out) {
  std::string host;
  uint16_t port = 0;
  if (!ParseHostPort(connect, &host, &port)) {
    return Usage();
  }
  fleet::FleetWorker::Options options;
  options.name = name;
  options.capacity = boards;
  options.metrics_out = metrics_out;
  auto worker = fleet::FleetWorker::Create(std::move(options));
  if (!worker.ok()) {
    fprintf(stderr, "worker failed: %s\n", worker.status().ToString().c_str());
    return 1;
  }
  auto transport = fleet::ConnectTcp(host, port);
  if (!transport.ok()) {
    fprintf(stderr, "worker failed: %s\n", transport.status().ToString().c_str());
    return 1;
  }
  printf("worker %s connected to %s (capacity %d)\n", name.c_str(), connect.c_str(),
         boards);
  fflush(stdout);
  Status ran = worker.value()->Run(transport.value().get());
  if (!ran.ok()) {
    fprintf(stderr, "worker failed: %s\n", ran.ToString().c_str());
    return 1;
  }
  for (const CampaignResult& batch : worker.value()->batch_results()) {
    printf("batch: execs=%llu coverage=%llu crashes=%llu corpus=%llu\n",
           static_cast<unsigned long long>(batch.execs),
           static_cast<unsigned long long>(batch.final_coverage),
           static_cast<unsigned long long>(batch.crashes),
           static_cast<unsigned long long>(batch.corpus_size));
  }
  return 0;
}

// `eof top`: polling live monitor over the fleet status protocol. Each poll is
// one short-lived observer connection (StatusRequest/StatusReply/Goodbye), so
// a dead or restarted orchestrator costs one failed poll, not a wedged
// monitor. --once renders a single frame without clearing the screen, for
// scripting and CI.
int Top(const std::string& connect, const std::string& campaign_id,
        uint64_t interval_s, bool once) {
  std::string host;
  uint16_t port = 0;
  if (!ParseHostPort(connect, &host, &port)) {
    return Usage();
  }
  // Poll history drives the exec-rate sparkline and plateau detection; keep a
  // bounded window so a long-running monitor never grows without bound.
  constexpr size_t kHistoryWindow = 32;
  std::vector<fleet::StatusReplyMsg> history;
  for (;;) {
    Status poll_status = OkStatus();
    auto transport = fleet::ConnectTcp(host, port);
    if (!transport.ok()) {
      poll_status = transport.status();
    } else {
      auto status = fleet::FetchStatus(transport.value().get(), campaign_id,
                                       /*include_shards=*/true,
                                       /*timeout_ms=*/5000);
      transport.value()->Close();
      if (!status.ok()) {
        poll_status = status.status();
      } else {
        history.push_back(std::move(status.value()));
        if (history.size() > kHistoryWindow) {
          history.erase(history.begin());
        }
      }
    }
    if (!poll_status.ok()) {
      if (once) {
        fprintf(stderr, "top failed: %s\n", poll_status.ToString().c_str());
        return 1;
      }
      fprintf(stderr, "top: poll failed: %s (retrying in %llus)\n",
              poll_status.ToString().c_str(),
              static_cast<unsigned long long>(interval_s));
    } else {
      if (!once) {
        fputs("\033[H\033[2J", stdout);  // cursor home + clear: plain redraw
      }
      fputs(fleet::RenderTopFrame(history).c_str(), stdout);
      fflush(stdout);
    }
    if (once) {
      return 0;
    }
    std::this_thread::sleep_for(std::chrono::seconds(interval_s));
  }
}

int Bugs() {
  printf("%-3s %-10s %-10s %-17s %-22s %s\n", "#", "OS", "Scope", "Type", "Operation",
         "Status");
  for (const BugInfo& bug : BugCatalog()) {
    printf("%-3d %-10s %-10s %-17s %-22s %s\n", bug.id, bug.os.c_str(), bug.scope.c_str(),
           bug.bug_type.c_str(), bug.operation.c_str(), bug.confirmed ? "confirmed" : "");
  }
  return 0;
}

int Repro(const std::string& os_name, int bug_id) {
  const BugInfo* bug = FindBug(bug_id);
  if (bug == nullptr || bug->os != os_name) {
    fprintf(stderr, "bug #%d is not a %s bug (see `eof bugs`)\n", bug_id, os_name.c_str());
    return 1;
  }
  printf("note: reproducer sequences live in tests/os/bug_trigger_test.cc; running the\n"
         "gtest filter for bug #%d:\n  ./build/tests/bug_trigger_test "
         "--gtest_filter='*Bug%02d*'\n",
         bug_id, bug_id);
  printf("\n#%d %s / %s / %s — signature: \"%s\", detector: %s\n", bug->id, bug->os.c_str(),
         bug->scope.c_str(), bug->operation.c_str(), bug->signature.c_str(),
         bug->expected_detector.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (!RegisterAllOses().ok()) {
    fprintf(stderr, "OS registration failed\n");
    return 1;
  }
  if (argc < 2 || strncmp(argv[1], "--", 2) == 0) {
    return Usage();
  }
  std::string command = argv[1];
  // Extract the `--flag value` options wherever they appear so the positional
  // arguments keep their slots; `--flag=value` also works. Parsing is strict:
  // a flag the subcommand does not take, an unknown flag, or a missing/invalid
  // value is a usage error naming the valid choices — never a silent default.
  int jobs = 1;
  RestoreMode restore_mode = RestoreMode::kReflash;
  std::string metrics_out;
  uint64_t metrics_interval_s = 0;  // 0 = keep the FuzzerConfig default
  bool json = false;
  bool directed = false;
  bool trim = false;
  bool overlapped_drain = true;
  uint64_t port = 0;  // 0 = ephemeral (serve prints the bound port)
  int shards = 1;
  int pool = 64;
  int priority = 1;
  std::string campaign_id = "campaign";
  uint64_t heartbeat_ms = 1000;
  uint64_t lease_ms = 5000;
  std::string connect;
  int boards = 1;
  std::string worker_name = "worker";
  std::vector<std::string> journals;
  std::string trace_out;
  int status_port = -1;  // -1 = no status endpoint; 0 = ephemeral
  uint64_t rotate_mb = 0;  // 0 = unrotated journal
  std::string top_campaign;  // empty = every campaign
  uint64_t interval_s = 2;
  bool once = false;
  {
    auto parse_uint = [](const char* text, uint64_t* out) {
      if (text == nullptr || text[0] < '0' || text[0] > '9') {
        return false;  // rejects empty, negative, and non-numeric values
      }
      char* end = nullptr;
      errno = 0;
      *out = strtoull(text, &end, 10);
      // ERANGE check: strtoull silently saturates on overflow ("18446744073709551616"
      // would otherwise read back as ULLONG_MAX and pass every range gate).
      return *end == '\0' && errno != ERANGE;
    };
    // Which flags each subcommand accepts, and the flag grammar itself. A flag
    // entry is "name" (switch) or "name=" (wants a value, inline or as the next
    // argument).
    const char* kFuzzFlags[] = {"--jobs=",        "--restore-mode=",
                                "--metrics-out=", "--metrics-interval=",
                                "--directed",     "--trim",
                                "--overlapped-drain=", nullptr};
    const char* kReportFlags[] = {"--json", "--journal=", "--trace-out=", nullptr};
    const char* kServeFlags[] = {"--port=",
                                 "--shards=",
                                 "--pool=",
                                 "--priority=",
                                 "--campaign-id=",
                                 "--heartbeat-interval=",
                                 "--lease-timeout=",
                                 "--restore-mode=",
                                 "--directed",
                                 "--trim",
                                 "--metrics-out=",
                                 "--metrics-interval=",
                                 "--status-port=",
                                 "--journal-rotate-mb=",
                                 nullptr};
    const char* kWorkerFlags[] = {"--connect=", "--boards=", "--name=",
                                  "--metrics-out=", nullptr};
    const char* kTopFlags[] = {"--connect=", "--campaign=", "--interval=",
                               "--once", nullptr};
    const char* kNoFlags[] = {nullptr};
    const char** allowed = kNoFlags;
    if (command == "fuzz") {
      allowed = kFuzzFlags;
    } else if (command == "report") {
      allowed = kReportFlags;
    } else if (command == "serve") {
      allowed = kServeFlags;
    } else if (command == "worker") {
      allowed = kWorkerFlags;
    } else if (command == "top") {
      allowed = kTopFlags;
    }
    auto flag_list = [&allowed]() {
      std::string list;
      for (const char** f = allowed; *f != nullptr; ++f) {
        std::string name = *f;
        if (!name.empty() && name.back() == '=') {
          name.pop_back();
        }
        list += list.empty() ? name : ", " + name;
      }
      return list.empty() ? std::string("none") : list;
    };
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        argv[out++] = argv[i];
        continue;
      }
      std::string name = arg.substr(0, arg.find('='));
      const char* spec = nullptr;
      for (const char** f = allowed; *f != nullptr; ++f) {
        std::string fname = *f;
        bool wants_value = !fname.empty() && fname.back() == '=';
        if (wants_value) {
          fname.pop_back();
        }
        if (fname == name) {
          spec = *f;
          break;
        }
      }
      if (spec == nullptr) {
        fprintf(stderr, "eof: unknown flag '%s' for '%s' (valid flags: %s)\n",
                name.c_str(), command.c_str(), flag_list().c_str());
        return Usage();
      }
      const char* value = nullptr;
      bool wants_value = spec[strlen(spec) - 1] == '=';
      size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        if (!wants_value) {
          fprintf(stderr, "eof: %s is a switch and takes no value\n", name.c_str());
          return Usage();
        }
        value = arg.c_str() + eq + 1;
      } else if (wants_value && i + 1 < argc) {
        value = argv[++i];
      }
      if (name == "--jobs") {
        uint64_t parsed = 0;
        if (!parse_uint(value, &parsed) || parsed < 1 || parsed > 1024) {
          fprintf(stderr, "eof: --jobs wants an integer in [1, 1024], got '%s'\n",
                  value == nullptr ? "" : value);
          return Usage();
        }
        jobs = static_cast<int>(parsed);
      } else if (name == "--restore-mode") {
        std::string mode = value == nullptr ? "" : value;
        if (mode == "reflash") {
          restore_mode = RestoreMode::kReflash;
        } else if (mode == "snapshot") {
          restore_mode = RestoreMode::kSnapshot;
        } else {
          fprintf(stderr, "eof: --restore-mode wants 'reflash' or 'snapshot', got '%s'\n",
                  mode.c_str());
          return Usage();
        }
      } else if (name == "--metrics-out") {
        if (value == nullptr || value[0] == '\0') {
          fprintf(stderr, "eof: --metrics-out wants a file path\n");
          return Usage();
        }
        metrics_out = value;
      } else if (name == "--metrics-interval") {
        if (!parse_uint(value, &metrics_interval_s) || metrics_interval_s < 1) {
          fprintf(stderr,
                  "eof: --metrics-interval wants a positive virtual-second count, "
                  "got '%s'\n",
                  value == nullptr ? "" : value);
          return Usage();
        }
      } else if (name == "--overlapped-drain") {
        std::string mode = value == nullptr ? "" : value;
        if (mode == "on") {
          overlapped_drain = true;
        } else if (mode == "off") {
          overlapped_drain = false;
        } else {
          fprintf(stderr, "eof: --overlapped-drain wants 'on' or 'off', got '%s'\n",
                  mode.c_str());
          return Usage();
        }
      } else if (name == "--directed") {
        directed = true;
      } else if (name == "--trim") {
        trim = true;
      } else if (name == "--json") {
        json = true;
      } else if (name == "--journal") {
        if (value == nullptr || value[0] == '\0') {
          fprintf(stderr, "eof: --journal wants a file path\n");
          return Usage();
        }
        journals.push_back(value);
      } else if (name == "--port") {
        if (!parse_uint(value, &port) || port > 65535) {
          fprintf(stderr, "eof: --port wants an integer in [0, 65535], got '%s'\n",
                  value == nullptr ? "" : value);
          return Usage();
        }
      } else if (name == "--shards") {
        uint64_t parsed = 0;
        if (!parse_uint(value, &parsed) || parsed < 1 || parsed > 1024) {
          fprintf(stderr, "eof: --shards wants an integer in [1, 1024], got '%s'\n",
                  value == nullptr ? "" : value);
          return Usage();
        }
        shards = static_cast<int>(parsed);
      } else if (name == "--pool") {
        uint64_t parsed = 0;
        if (!parse_uint(value, &parsed) || parsed < 1 || parsed > 4096) {
          fprintf(stderr, "eof: --pool wants an integer in [1, 4096], got '%s'\n",
                  value == nullptr ? "" : value);
          return Usage();
        }
        pool = static_cast<int>(parsed);
      } else if (name == "--priority") {
        uint64_t parsed = 0;
        if (!parse_uint(value, &parsed) || parsed < 1 || parsed > 1000) {
          fprintf(stderr, "eof: --priority wants an integer in [1, 1000], got '%s'\n",
                  value == nullptr ? "" : value);
          return Usage();
        }
        priority = static_cast<int>(parsed);
      } else if (name == "--campaign-id") {
        if (value == nullptr || value[0] == '\0') {
          fprintf(stderr, "eof: --campaign-id wants a non-empty id\n");
          return Usage();
        }
        campaign_id = value;
      } else if (name == "--heartbeat-interval") {
        // Validated here, not in the orchestrator, so a bad knob is a usage
        // error before any socket is opened (consistent with the rest of the
        // strict flag grammar). Bounds: 1ms .. 1 hour.
        if (!parse_uint(value, &heartbeat_ms) || heartbeat_ms < 1 ||
            heartbeat_ms > 3600000) {
          fprintf(stderr,
                  "eof: --heartbeat-interval wants milliseconds in [1, 3600000], "
                  "got '%s'\n",
                  value == nullptr ? "" : value);
          return Usage();
        }
      } else if (name == "--lease-timeout") {
        // Bounds: 1ms .. 24 hours; must exceed the heartbeat (checked below once
        // both flags are parsed).
        if (!parse_uint(value, &lease_ms) || lease_ms < 1 || lease_ms > 86400000) {
          fprintf(stderr,
                  "eof: --lease-timeout wants milliseconds in [1, 86400000], "
                  "got '%s'\n",
                  value == nullptr ? "" : value);
          return Usage();
        }
      } else if (name == "--connect") {
        if (value == nullptr || value[0] == '\0') {
          fprintf(stderr, "eof: --connect wants HOST:PORT\n");
          return Usage();
        }
        connect = value;
      } else if (name == "--boards") {
        uint64_t parsed = 0;
        if (!parse_uint(value, &parsed) || parsed < 1 || parsed > 1024) {
          fprintf(stderr, "eof: --boards wants an integer in [1, 1024], got '%s'\n",
                  value == nullptr ? "" : value);
          return Usage();
        }
        boards = static_cast<int>(parsed);
      } else if (name == "--name") {
        if (value == nullptr || value[0] == '\0') {
          fprintf(stderr, "eof: --name wants a non-empty worker name\n");
          return Usage();
        }
        worker_name = value;
      } else if (name == "--trace-out") {
        if (value == nullptr || value[0] == '\0') {
          fprintf(stderr, "eof: --trace-out wants a file path\n");
          return Usage();
        }
        trace_out = value;
      } else if (name == "--status-port") {
        uint64_t parsed = 0;
        if (!parse_uint(value, &parsed) || parsed > 65535) {
          fprintf(stderr,
                  "eof: --status-port wants an integer in [0, 65535] (0 = "
                  "ephemeral), got '%s'\n",
                  value == nullptr ? "" : value);
          return Usage();
        }
        status_port = static_cast<int>(parsed);
      } else if (name == "--journal-rotate-mb") {
        // Bounds: 1 MiB .. 10 GiB per segment.
        if (!parse_uint(value, &rotate_mb) || rotate_mb < 1 || rotate_mb > 10240) {
          fprintf(stderr,
                  "eof: --journal-rotate-mb wants megabytes in [1, 10240], "
                  "got '%s'\n",
                  value == nullptr ? "" : value);
          return Usage();
        }
      } else if (name == "--campaign") {
        if (value == nullptr || value[0] == '\0') {
          fprintf(stderr, "eof: --campaign wants a non-empty campaign id\n");
          return Usage();
        }
        top_campaign = value;
      } else if (name == "--interval") {
        if (!parse_uint(value, &interval_s) || interval_s < 1 ||
            interval_s > 3600) {
          fprintf(stderr,
                  "eof: --interval wants seconds in [1, 3600], got '%s'\n",
                  value == nullptr ? "" : value);
          return Usage();
        }
      } else if (name == "--once") {
        once = true;
      }
    }
    argc = out;
  }
  if (command == "serve" && lease_ms <= heartbeat_ms) {
    fprintf(stderr,
            "eof: --lease-timeout (%llu ms) must exceed --heartbeat-interval "
            "(%llu ms)\n",
            static_cast<unsigned long long>(lease_ms),
            static_cast<unsigned long long>(heartbeat_ms));
    return Usage();
  }
  if (command == "serve" && rotate_mb > 0 && metrics_out.empty()) {
    fprintf(stderr,
            "eof: --journal-rotate-mb needs --metrics-out (no journal to "
            "rotate)\n");
    return Usage();
  }
  if (command == "list-targets") {
    return ListTargets();
  }
  if (command == "mine-specs" && argc >= 3) {
    return MineSpecs(argv[2]);
  }
  if (command == "fuzz" && argc >= 3) {
    uint64_t minutes = argc >= 4 ? strtoull(argv[3], nullptr, 10) : 60;
    uint64_t seed = argc >= 5 ? strtoull(argv[4], nullptr, 10) : 1;
    std::string board = argc >= 6 ? argv[5] : "";
    return Fuzz(argv[2], minutes == 0 ? 60 : minutes, seed, board, jobs, restore_mode,
                metrics_out, metrics_interval_s, directed, trim, overlapped_drain);
  }
  if (command == "report" && (argc >= 3 || !journals.empty())) {
    for (int i = 2; i < argc; ++i) {
      if (!ExpandJournalArg(argv[i], &journals)) {
        return 1;
      }
    }
    return Report(journals, json, trace_out);
  }
  if (command == "serve" && argc >= 3) {
    uint64_t minutes = argc >= 4 ? strtoull(argv[3], nullptr, 10) : 60;
    uint64_t seed = argc >= 5 ? strtoull(argv[4], nullptr, 10) : 1;
    std::string board = argc >= 6 ? argv[5] : "";
    fleet::Orchestrator::Options fleet_options;
    fleet_options.board_pool = pool;
    fleet_options.heartbeat_interval_ms = heartbeat_ms;
    fleet_options.lease_timeout_ms = lease_ms;
    fleet_options.journal_rotate_bytes = rotate_mb * 1024 * 1024;
    return Serve(argv[2], minutes == 0 ? 60 : minutes, seed, board, campaign_id,
                 shards, priority, static_cast<uint16_t>(port), fleet_options,
                 restore_mode, metrics_out, metrics_interval_s, directed, trim,
                 status_port);
  }
  if (command == "worker") {
    if (connect.empty()) {
      fprintf(stderr, "eof: worker needs --connect HOST:PORT\n");
      return Usage();
    }
    return Worker(connect, boards, worker_name, metrics_out);
  }
  if (command == "top") {
    if (connect.empty()) {
      fprintf(stderr, "eof: top needs --connect HOST:PORT\n");
      return Usage();
    }
    return Top(connect, top_campaign, interval_s, once);
  }
  if (command == "repro" && argc >= 4) {
    return Repro(argv[2], atoi(argv[3]));
  }
  if (command == "replay" && argc >= 4) {
    return Replay(argv[2], argv[3]);
  }
  if (command == "trim" && argc >= 4) {
    return Trim(argv[2], argv[3], argc >= 5 ? argv[4] : "");
  }
  if (command == "bugs") {
    return Bugs();
  }
  return Usage();
}
