// eof — command-line front end, the operator's entry point (the role of the Golang engine
// binary in the paper's released tool).
//
//   eof list-targets                          supported OSs, boards, and API counts
//   eof mine-specs <os>                       print the validated Syzlang for a target
//   eof fuzz <os> [minutes] [seed] [board]    run a campaign, print live-ish summary
//   eof report <journal.jsonl> [--json]       analyze a --metrics-out campaign journal
//   eof repro <os> <bug-id>                   run a catalog bug's reproducer
//   eof bugs                                  print the bug catalog

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/agent/wire.h"
#include "src/core/board_farm.h"
#include "src/core/bug_catalog.h"
#include "src/core/deployment.h"
#include "src/core/fuzzer.h"
#include "src/core/monitors.h"
#include "src/core/replay.h"
#include "src/hw/board_catalog.h"
#include "src/kernel/os.h"
#include "src/os/all_oses.h"
#include "src/spec/spec_miner.h"
#include "src/telemetry/report.h"

using namespace eof;

namespace {

int Usage() {
  fprintf(stderr,
          "usage:\n"
          "  eof list-targets\n"
          "  eof mine-specs <os>\n"
          "  eof fuzz <os> [minutes=60] [seed=1] [board=default] [--jobs N]\n"
          "           [--restore-mode reflash|snapshot] [--directed] [--trim]\n"
          "           [--overlapped-drain on|off]\n"
          "           [--metrics-out FILE.jsonl] [--metrics-interval SECONDS]\n"
          "  eof report <journal.jsonl> [--json]\n"
          "  eof repro <os> <bug-id>\n"
          "  eof replay <os> <reproducer-file>\n"
          "  eof trim <os> <reproducer-file> [board]\n"
          "  eof bugs\n");
  return 2;
}

int ListTargets() {
  printf("%-10s %-18s %-6s %s\n", "OS", "default board", "APIs", "description");
  for (const std::string& name : OsRegistry::Instance().Names()) {
    OsInfo info = OsRegistry::Instance().Find(name).value();
    std::unique_ptr<Os> os = info.factory();
    printf("%-10s %-18s %-6zu %s\n", name.c_str(), info.default_board.c_str(),
           os->registry().size(), info.description.c_str());
  }
  printf("\nboards:\n");
  for (const std::string& board : KnownBoardNames()) {
    BoardSpec spec = BoardSpecByName(board).value();
    printf("  %-18s %-8s %4u MHz  %4llu KiB RAM  %2d hw-bp%s\n", board.c_str(),
           ArchName(spec.arch), spec.clock_mhz,
           static_cast<unsigned long long>(spec.ram_bytes / 1024), spec.max_hw_breakpoints,
           spec.emulated ? "  (emulated)" : "");
  }
  return 0;
}

int MineSpecs(const std::string& os_name) {
  auto info = OsRegistry::Instance().Find(os_name);
  if (!info.ok()) {
    fprintf(stderr, "unknown OS '%s'\n", os_name.c_str());
    return 1;
  }
  std::unique_ptr<Os> os = info.value().factory();
  auto mined = spec::MineValidatedSpecs(os->registry());
  if (!mined.ok()) {
    fprintf(stderr, "%s\n", mined.status().ToString().c_str());
    return 1;
  }
  fputs(mined.value().source.c_str(), stdout);
  fprintf(stderr, "# %zu specifications validated\n", mined.value().specs.calls.size());
  return 0;
}

int Fuzz(const std::string& os_name, uint64_t minutes, uint64_t seed,
         const std::string& board, int jobs, RestoreMode restore_mode,
         const std::string& metrics_out, uint64_t metrics_interval_s, bool directed,
         bool trim, bool overlapped_drain) {
  FuzzerConfig config;
  config.os_name = os_name;
  config.board_name = board;
  config.seed = seed;
  config.budget = minutes * kVirtualMinute;
  config.sample_points = 12;
  config.restore_mode = restore_mode;
  config.metrics_out = metrics_out;
  config.directed = directed;
  config.trim = trim;
  config.overlapped_drain = overlapped_drain;
  if (metrics_interval_s > 0) {
    config.metrics_interval = metrics_interval_s * kVirtualSecond;
  }
  printf("fuzzing %s for %llu virtual minutes (seed %llu, %d board%s, %s restores)...\n",
         os_name.c_str(), static_cast<unsigned long long>(minutes),
         static_cast<unsigned long long>(seed), jobs, jobs == 1 ? "" : "s",
         restore_mode == RestoreMode::kSnapshot ? "snapshot" : "reflash");
  Result<CampaignResult> result = [&] {
    if (jobs > 1) {
      BoardFarm farm(config, jobs);
      return farm.Run();
    }
    EofFuzzer fuzzer(config);
    return fuzzer.Run();
  }();
  if (!result.ok()) {
    fprintf(stderr, "campaign failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const CampaignResult& campaign = result.value();
  for (const CampaignSample& sample : campaign.series) {
    printf("  t=%5llum  coverage=%llu\n",
           static_cast<unsigned long long>(sample.time / kVirtualMinute),
           static_cast<unsigned long long>(sample.coverage));
  }
  printf("execs=%llu coverage=%llu crashes=%llu stalls=%llu restores=%llu corpus=%llu\n",
         static_cast<unsigned long long>(campaign.execs),
         static_cast<unsigned long long>(campaign.final_coverage),
         static_cast<unsigned long long>(campaign.crashes),
         static_cast<unsigned long long>(campaign.stalls),
         static_cast<unsigned long long>(campaign.restores),
         static_cast<unsigned long long>(campaign.corpus_size));
  if (restore_mode == RestoreMode::kSnapshot) {
    printf("snapshot_restores=%llu snapshot_bytes=%llu rejected_sightings=%llu\n",
           static_cast<unsigned long long>(campaign.snapshot_restores),
           static_cast<unsigned long long>(campaign.snapshot_bytes),
           static_cast<unsigned long long>(campaign.bugs_rejected));
  }
  if (directed) {
    printf("directed_hits=%llu frontier=%llu\n",
           static_cast<unsigned long long>(campaign.directed_hits),
           static_cast<unsigned long long>(campaign.frontier));
  }
  if (trim) {
    printf("trim_kept_calls=%llu trim_removed_calls=%llu\n",
           static_cast<unsigned long long>(campaign.trim_kept_calls),
           static_cast<unsigned long long>(campaign.trim_removed_calls));
  }
  for (const BugReport& bug : campaign.bugs) {
    const BugInfo* info = FindBug(bug.catalog_id);
    printf("\nBUG #%d %s [%s monitor]\n%s\nreproducer:\n%s", bug.catalog_id,
           info != nullptr ? info->operation.c_str() : "(unknown)", bug.detector.c_str(),
           bug.excerpt.c_str(), bug.program_text.c_str());
  }
  return 0;
}

bool ReadFileText(const std::string& path, std::string* text) {
  FILE* file = fopen(path.c_str(), "rb");
  if (file == nullptr) {
    fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  char buffer[4096];
  size_t got;
  while ((got = fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text->append(buffer, got);
  }
  fclose(file);
  return true;
}

int Replay(const std::string& os_name, const std::string& path) {
  std::string text;
  if (!ReadFileText(path, &text)) {
    return 1;
  }
  auto outcome = ReplayReproducer(os_name, text);
  if (!outcome.ok()) {
    fprintf(stderr, "replay failed: %s\n", outcome.status().ToString().c_str());
    return 1;
  }
  if (!outcome.value().crashed) {
    printf("no crash: the reproducer ran to completion\n");
    return 0;
  }
  printf("CRASH [%s monitor]", outcome.value().detector.c_str());
  if (outcome.value().catalog_id != 0) {
    const BugInfo* info = FindBug(outcome.value().catalog_id);
    printf(" -> bug #%d (%s)", outcome.value().catalog_id,
           info != nullptr ? info->operation.c_str() : "?");
  }
  printf("\n%s\n", outcome.value().crash_text.c_str());
  return 0;
}

int Trim(const std::string& os_name, const std::string& path, const std::string& board) {
  std::string text;
  if (!ReadFileText(path, &text)) {
    return 1;
  }
  auto outcome = TrimReproducer(os_name, text, board);
  if (!outcome.ok()) {
    fprintf(stderr, "trim failed: %s\n", outcome.status().ToString().c_str());
    return 1;
  }
  const TrimOutcome& trim = outcome.value();
  fprintf(stderr, "trim: %zu -> %zu calls (%zu removed), coverage %llu -> %llu (%s)\n",
          trim.original_calls, trim.kept_calls, trim.removed_calls,
          static_cast<unsigned long long>(trim.original_coverage),
          static_cast<unsigned long long>(trim.trimmed_coverage),
          trim.coverage_preserved ? "preserved" : "NOT preserved — keep the original");
  fputs(trim.trimmed_text.c_str(), stdout);
  return trim.coverage_preserved ? 0 : 1;
}

int Report(const std::string& path, bool json) {
  auto report = telemetry::LoadReportFromFile(path);
  if (!report.ok()) {
    fprintf(stderr, "report failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  fputs(json ? report->RenderJson().c_str() : report->RenderText().c_str(), stdout);
  return 0;
}

int Bugs() {
  printf("%-3s %-10s %-10s %-17s %-22s %s\n", "#", "OS", "Scope", "Type", "Operation",
         "Status");
  for (const BugInfo& bug : BugCatalog()) {
    printf("%-3d %-10s %-10s %-17s %-22s %s\n", bug.id, bug.os.c_str(), bug.scope.c_str(),
           bug.bug_type.c_str(), bug.operation.c_str(), bug.confirmed ? "confirmed" : "");
  }
  return 0;
}

int Repro(const std::string& os_name, int bug_id) {
  const BugInfo* bug = FindBug(bug_id);
  if (bug == nullptr || bug->os != os_name) {
    fprintf(stderr, "bug #%d is not a %s bug (see `eof bugs`)\n", bug_id, os_name.c_str());
    return 1;
  }
  printf("note: reproducer sequences live in tests/os/bug_trigger_test.cc; running the\n"
         "gtest filter for bug #%d:\n  ./build/tests/bug_trigger_test "
         "--gtest_filter='*Bug%02d*'\n",
         bug_id, bug_id);
  printf("\n#%d %s / %s / %s — signature: \"%s\", detector: %s\n", bug->id, bug->os.c_str(),
         bug->scope.c_str(), bug->operation.c_str(), bug->signature.c_str(),
         bug->expected_detector.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (!RegisterAllOses().ok()) {
    fprintf(stderr, "OS registration failed\n");
    return 1;
  }
  if (argc < 2 || strncmp(argv[1], "--", 2) == 0) {
    return Usage();
  }
  std::string command = argv[1];
  // Extract the `--flag value` options wherever they appear so the positional
  // arguments keep their slots; `--flag=value` also works. Parsing is strict:
  // a flag the subcommand does not take, an unknown flag, or a missing/invalid
  // value is a usage error naming the valid choices — never a silent default.
  int jobs = 1;
  RestoreMode restore_mode = RestoreMode::kReflash;
  std::string metrics_out;
  uint64_t metrics_interval_s = 0;  // 0 = keep the FuzzerConfig default
  bool json = false;
  bool directed = false;
  bool trim = false;
  bool overlapped_drain = true;
  {
    auto parse_uint = [](const char* text, uint64_t* out) {
      if (text == nullptr || text[0] < '0' || text[0] > '9') {
        return false;  // rejects empty, negative, and non-numeric values
      }
      char* end = nullptr;
      *out = strtoull(text, &end, 10);
      return *end == '\0';
    };
    // Which flags each subcommand accepts, and the flag grammar itself. A flag
    // entry is "name" (switch) or "name=" (wants a value, inline or as the next
    // argument).
    const char* kFuzzFlags[] = {"--jobs=",        "--restore-mode=",
                                "--metrics-out=", "--metrics-interval=",
                                "--directed",     "--trim",
                                "--overlapped-drain=", nullptr};
    const char* kReportFlags[] = {"--json", nullptr};
    const char* kNoFlags[] = {nullptr};
    const char** allowed = kNoFlags;
    if (command == "fuzz") {
      allowed = kFuzzFlags;
    } else if (command == "report") {
      allowed = kReportFlags;
    }
    auto flag_list = [&allowed]() {
      std::string list;
      for (const char** f = allowed; *f != nullptr; ++f) {
        std::string name = *f;
        if (!name.empty() && name.back() == '=') {
          name.pop_back();
        }
        list += list.empty() ? name : ", " + name;
      }
      return list.empty() ? std::string("none") : list;
    };
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        argv[out++] = argv[i];
        continue;
      }
      std::string name = arg.substr(0, arg.find('='));
      const char* spec = nullptr;
      for (const char** f = allowed; *f != nullptr; ++f) {
        std::string fname = *f;
        bool wants_value = !fname.empty() && fname.back() == '=';
        if (wants_value) {
          fname.pop_back();
        }
        if (fname == name) {
          spec = *f;
          break;
        }
      }
      if (spec == nullptr) {
        fprintf(stderr, "eof: unknown flag '%s' for '%s' (valid flags: %s)\n",
                name.c_str(), command.c_str(), flag_list().c_str());
        return Usage();
      }
      const char* value = nullptr;
      bool wants_value = spec[strlen(spec) - 1] == '=';
      size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        if (!wants_value) {
          fprintf(stderr, "eof: %s is a switch and takes no value\n", name.c_str());
          return Usage();
        }
        value = arg.c_str() + eq + 1;
      } else if (wants_value && i + 1 < argc) {
        value = argv[++i];
      }
      if (name == "--jobs") {
        uint64_t parsed = 0;
        if (!parse_uint(value, &parsed) || parsed < 1 || parsed > 1024) {
          fprintf(stderr, "eof: --jobs wants an integer in [1, 1024], got '%s'\n",
                  value == nullptr ? "" : value);
          return Usage();
        }
        jobs = static_cast<int>(parsed);
      } else if (name == "--restore-mode") {
        std::string mode = value == nullptr ? "" : value;
        if (mode == "reflash") {
          restore_mode = RestoreMode::kReflash;
        } else if (mode == "snapshot") {
          restore_mode = RestoreMode::kSnapshot;
        } else {
          fprintf(stderr, "eof: --restore-mode wants 'reflash' or 'snapshot', got '%s'\n",
                  mode.c_str());
          return Usage();
        }
      } else if (name == "--metrics-out") {
        if (value == nullptr || value[0] == '\0') {
          fprintf(stderr, "eof: --metrics-out wants a file path\n");
          return Usage();
        }
        metrics_out = value;
      } else if (name == "--metrics-interval") {
        if (!parse_uint(value, &metrics_interval_s) || metrics_interval_s < 1) {
          fprintf(stderr,
                  "eof: --metrics-interval wants a positive virtual-second count, "
                  "got '%s'\n",
                  value == nullptr ? "" : value);
          return Usage();
        }
      } else if (name == "--overlapped-drain") {
        std::string mode = value == nullptr ? "" : value;
        if (mode == "on") {
          overlapped_drain = true;
        } else if (mode == "off") {
          overlapped_drain = false;
        } else {
          fprintf(stderr, "eof: --overlapped-drain wants 'on' or 'off', got '%s'\n",
                  mode.c_str());
          return Usage();
        }
      } else if (name == "--directed") {
        directed = true;
      } else if (name == "--trim") {
        trim = true;
      } else if (name == "--json") {
        json = true;
      }
    }
    argc = out;
  }
  if (command == "list-targets") {
    return ListTargets();
  }
  if (command == "mine-specs" && argc >= 3) {
    return MineSpecs(argv[2]);
  }
  if (command == "fuzz" && argc >= 3) {
    uint64_t minutes = argc >= 4 ? strtoull(argv[3], nullptr, 10) : 60;
    uint64_t seed = argc >= 5 ? strtoull(argv[4], nullptr, 10) : 1;
    std::string board = argc >= 6 ? argv[5] : "";
    return Fuzz(argv[2], minutes == 0 ? 60 : minutes, seed, board, jobs, restore_mode,
                metrics_out, metrics_interval_s, directed, trim, overlapped_drain);
  }
  if (command == "report" && argc >= 3) {
    return Report(argv[2], json);
  }
  if (command == "repro" && argc >= 4) {
    return Repro(argv[2], atoi(argv[3]));
  }
  if (command == "replay" && argc >= 4) {
    return Replay(argv[2], argv[3]);
  }
  if (command == "trim" && argc >= 4) {
    return Trim(argv[2], argv[3], argc >= 5 ? argv[4] : "");
  }
  if (command == "bugs") {
    return Bugs();
  }
  return Usage();
}
